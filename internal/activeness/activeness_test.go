package activeness

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

var (
	tc = timeutil.Date(2016, time.July, 1)
	p7 = timeutil.Days(7)
)

// acts builds a sorted activity list from (days-before-tc, impact)
// pairs.
func acts(pairs ...[2]float64) []Activity {
	out := make([]Activity, 0, len(pairs))
	for _, pr := range pairs { // pairs are oldest-first → ascending TS
		out = append(out, Activity{
			TS:     tc.Add(-timeutil.Duration(pr[0] * float64(timeutil.Day))),
			Impact: pr[1],
		})
	}
	return out
}

func TestTypeRankEmptyHistory(t *testing.T) {
	if got := TypeRank(nil, tc, p7); got != 1.0 {
		t.Fatalf("empty history rank = %v, want 1.0 (initial rank)", got)
	}
}

func TestTypeRankFutureOnly(t *testing.T) {
	future := []Activity{{TS: tc.Add(timeutil.Days(3)), Impact: 5}}
	if got := TypeRank(future, tc, p7); got != 1.0 {
		t.Fatalf("future-only history rank = %v, want 1.0", got)
	}
}

func TestTypeRankZeroImpact(t *testing.T) {
	a := acts([2]float64{1, 0}, [2]float64{3, 0})
	if got := TypeRank(a, tc, p7); got != 0 {
		t.Fatalf("zero-impact rank = %v, want 0", got)
	}
}

func TestTypeRankSingleRecentActivity(t *testing.T) {
	// One activity: m = 1, its own period average, b = 1 → Φ = 1.
	a := acts([2]float64{2, 50})
	if got := TypeRank(a, tc, p7); got != 1 {
		t.Fatalf("single recent activity rank = %v, want 1", got)
	}
}

func TestTypeRankStaleHistoryIsInactive(t *testing.T) {
	// Activities spanning 2 periods but ending 10 periods before tc:
	// the 2-period window ending at tc is empty → Φ = 0.
	a := acts([2]float64{80, 10}, [2]float64{75, 10})
	if got := TypeRank(a, tc, p7); got != 0 {
		t.Fatalf("stale history rank = %v, want 0", got)
	}
}

func TestTypeRankTrendDirection(t *testing.T) {
	// Rising impact (recent period heavier) → active (Φ > 1).
	rising := acts([2]float64{12, 1}, [2]float64{3, 3}) // span 9d → m = 2
	phiUp := TypeRank(rising, tc, p7)
	if phiUp <= 1 {
		t.Errorf("rising trend Φ = %v, want > 1", phiUp)
	}
	// Φ = b1·b2² with b1 = 0.5, b2 = 1.5 → 1.125.
	if math.Abs(phiUp-1.125) > 1e-9 {
		t.Errorf("rising trend Φ = %v, want 1.125", phiUp)
	}
	// Falling impact → inactive (Φ < 1).
	falling := acts([2]float64{12, 3}, [2]float64{3, 1})
	phiDown := TypeRank(falling, tc, p7)
	if phiDown >= 1 {
		t.Errorf("falling trend Φ = %v, want < 1", phiDown)
	}
	if math.Abs(phiDown-0.375) > 1e-9 {
		t.Errorf("falling trend Φ = %v, want 0.375", phiDown)
	}
	// Uniform impact → exactly 1 (boundary: active).
	uniform := acts([2]float64{12, 2}, [2]float64{3, 2})
	if phi := TypeRank(uniform, tc, p7); math.Abs(phi-1) > 1e-9 {
		t.Errorf("uniform trend Φ = %v, want 1", phi)
	}
}

func TestTypeRankEmptyPeriodZeroes(t *testing.T) {
	// Three periods with the middle one empty → Φ = 0.
	a := acts([2]float64{17, 5}, [2]float64{2, 5})
	if got := TypeRank(a, tc, p7); got != 0 {
		t.Fatalf("gapped history rank = %v, want 0", got)
	}
}

func TestTypeRankIgnoresFutureActivities(t *testing.T) {
	base := acts([2]float64{12, 1}, [2]float64{3, 3})
	withFuture := append(append([]Activity(nil), base...),
		Activity{TS: tc.Add(timeutil.Days(2)), Impact: 1e9})
	if TypeRank(base, tc, p7) != TypeRank(withFuture, tc, p7) {
		t.Fatal("future activity changed the rank")
	}
}

func TestTypeRankOverflowClamps(t *testing.T) {
	// ~150 weekly periods with impact growing linearly toward the
	// present: the log-weighted product Σ e·ln(b_e) exceeds 709, so a
	// raw float64 product overflows and must clamp.
	var a []Activity
	for back := 149; back >= 0; back-- {
		a = append(a, Activity{
			TS:     tc.Add(-timeutil.Duration(back)*p7 - timeutil.Hour),
			Impact: float64(150 - back),
		})
	}
	got := TypeRank(a, tc, p7)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("rank overflowed: %v", got)
	}
	if got != math.MaxFloat64 {
		t.Fatalf("rank = %v, want MaxFloat64 clamp", got)
	}
}

func TestTypeRankPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero period":     func() { TypeRank(nil, tc, 0) },
		"negative impact": func() { TypeRank(acts([2]float64{1, -3}), tc, p7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Φ is invariant under uniform scaling of impacts (only
// relative per-period shares matter).
func TestTypeRankScaleInvariance(t *testing.T) {
	f := func(raw [6]uint8, scaleRaw uint8) bool {
		scale := 1 + float64(scaleRaw)
		var base, scaled []Activity
		for i, v := range raw {
			impact := float64(v) + 1
			ts := tc.Add(-timeutil.Duration(i) * p7 / 2)
			base = append(base, Activity{TS: ts, Impact: impact})
			scaled = append(scaled, Activity{TS: ts, Impact: impact * scale})
		}
		// Lists are built newest-first; sort by construction order.
		reverse(base)
		reverse(scaled)
		a, b := TypeRank(base, tc, p7), TypeRank(scaled, tc, p7)
		if a == 0 && b == 0 {
			return true
		}
		return math.Abs(a-b) <= 1e-9*math.Max(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func reverse(a []Activity) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// Property: the sum of activeness ratios over the window never
// exceeds m (it equals m exactly when every activity falls inside
// the window). Verified indirectly: a history fully inside one
// period has Φ = 1.
func TestTypeRankSinglePeriodAlwaysOne(t *testing.T) {
	f := func(impacts [4]uint8) bool {
		var a []Activity
		total := 0.0
		for i, v := range impacts {
			impact := float64(v) + 1
			total += impact
			a = append(a, Activity{TS: tc.Add(-timeutil.Duration(i+1) * timeutil.Hour), Impact: impact})
		}
		reverse(a)
		phi := TypeRank(a, tc, p7)
		return math.Abs(phi-1) < 1e-9 && total > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCombineTypeRanks(t *testing.T) {
	if got := CombineTypeRanks(nil); got != 1 {
		t.Errorf("empty combine = %v", got)
	}
	if got := CombineTypeRanks([]float64{2, 3, 0.5}); got != 3 {
		t.Errorf("combine = %v, want 3", got)
	}
	if got := CombineTypeRanks([]float64{math.MaxFloat64, 2}); got != math.MaxFloat64 {
		t.Errorf("combine overflow = %v", got)
	}
}

func TestRankClassification(t *testing.T) {
	cases := []struct {
		r    Rank
		want Group
	}{
		{Rank{Op: 2, Oc: 2, HasOp: true, HasOc: true}, BothActive},
		{Rank{Op: 2, Oc: 0.5, HasOp: true, HasOc: true}, OperationActiveOnly},
		{Rank{Op: 0.5, Oc: 2, HasOp: true, HasOc: true}, OutcomeActiveOnly},
		{Rank{Op: 0.5, Oc: 0.5, HasOp: true, HasOc: true}, BothInactive},
		{Rank{Op: 1, Oc: 1, HasOp: true, HasOc: true}, BothActive}, // boundary Φ=1 is active
		{NewUserRank(), BothInactive},                              // no data → inactive despite rank 1.0
		{Rank{Op: 5, Oc: 1}, BothInactive},                         // rank without data doesn't count
		{Rank{Op: 2, HasOp: true, Oc: 1}, OperationActiveOnly},
	}
	for i, c := range cases {
		if got := c.r.Group(); got != c.want {
			t.Errorf("case %d: Group = %v, want %v", i, got, c.want)
		}
	}
}

func TestLifetimeMultiplier(t *testing.T) {
	cases := []struct {
		r    Rank
		want float64
	}{
		{Rank{Op: 3, Oc: 2, HasOp: true, HasOc: true}, 6},       // both active: product
		{Rank{Op: 3, Oc: 0, HasOp: true, HasOc: true}, 3},       // op-only: operations alone
		{Rank{Op: 0, Oc: 4, HasOp: true, HasOc: true}, 4},       // oc-only: outcomes alone
		{Rank{Op: 0.2, Oc: 0, HasOp: true, HasOc: true}, 0},     // both inactive: cut back to 0
		{Rank{Op: 0.4, Oc: 0.5, HasOp: true, HasOc: true}, 0.2}, // both inactive: raw product
		{Rank{Op: 0.5, Oc: 1, HasOp: true}, 0.5},                // inactive with op data only
		{NewUserRank(), 1},                                      // new user: initial lifetime
	}
	for i, c := range cases {
		if got := c.r.LifetimeMultiplier(); got != c.want {
			t.Errorf("case %d: multiplier = %v, want %v", i, got, c.want)
		}
	}
	inf := Rank{Op: math.MaxFloat64, Oc: math.MaxFloat64, HasOp: true, HasOc: true}
	if got := inf.LifetimeMultiplier(); got != math.MaxFloat64 {
		t.Errorf("overflow multiplier = %v", got)
	}
}

func TestStrictEq7Multiplier(t *testing.T) {
	r := Rank{Op: 3, Oc: 0, HasOp: true, HasOc: true}
	if got := r.StrictEq7Multiplier(); got != 0 {
		t.Errorf("strict Eq7 = %v, want 0", got)
	}
	inf := Rank{Op: math.MaxFloat64, Oc: 2}
	if got := inf.StrictEq7Multiplier(); got != math.MaxFloat64 {
		t.Errorf("strict Eq7 overflow = %v", got)
	}
}

func TestEvaluatorEndToEnd(t *testing.T) {
	e := NewEvaluator(p7)
	jobT := e.AddType("job-submission", Operation)
	pubT := e.AddType("publication", Outcome)
	if len(e.Types()) != 2 || e.Types()[0].Name != "job-submission" {
		t.Fatal("type registry wrong")
	}
	// User 0: steadily rising job activity over the last 2 weeks and a
	// recent publication → both active.
	e.Record(jobT, 0, tc.Add(-timeutil.Days(12)), 10)
	e.Record(jobT, 0, tc.Add(-timeutil.Days(8)), 20)
	e.Record(jobT, 0, tc.Add(-timeutil.Days(2)), 40)
	e.RecordPublications(pubT, []trace.Publication{
		{TS: tc.Add(-timeutil.Days(3)), Citations: 4, Authors: []trace.UserID{0}},
	})
	// User 1: one burst of jobs months ago → operation-inactive, no
	// outcome data.
	e.Record(jobT, 1, tc.Add(-timeutil.Days(200)), 100)
	e.Record(jobT, 1, tc.Add(-timeutil.Days(195)), 100)
	// User 2: nothing.
	ranks := e.EvaluateAll(3, tc)
	if g := ranks[0].Group(); g != BothActive {
		t.Errorf("user 0 group = %v (rank %+v), want BothActive", g, ranks[0])
	}
	if !ranks[1].HasOp || ranks[1].HasOc {
		t.Errorf("user 1 flags wrong: %+v", ranks[1])
	}
	if g := ranks[1].Group(); g != BothInactive {
		t.Errorf("user 1 group = %v, want BothInactive (stale)", g)
	}
	if ranks[2] != NewUserRank() {
		t.Errorf("user 2 rank = %+v, want new-user rank", ranks[2])
	}
	// Recency drift: re-evaluating user 0 four months later flips them
	// inactive.
	later := tc.Add(timeutil.Days(120))
	r := e.EvaluateUser(0, later)
	if r.Group() != BothInactive {
		t.Errorf("user 0 four months later = %v (rank %+v), want BothInactive", r.Group(), r)
	}
}

func TestEvaluatorRecordJobs(t *testing.T) {
	e := NewEvaluator(p7)
	jobT := e.AddType("job", Operation)
	e.RecordJobs(jobT, []trace.Job{
		{User: 0, Submit: tc.Add(-timeutil.Days(1)), Duration: timeutil.Hours(2), Cores: 8},
	})
	r := e.EvaluateUser(0, tc)
	if !r.HasOp || r.Op != 1 {
		t.Fatalf("rank = %+v, want single-period active", r)
	}
}

func TestEvaluatorUnsortedInput(t *testing.T) {
	e := NewEvaluator(p7)
	jt := e.AddType("job", Operation)
	// Deliberately out of order.
	e.Record(jt, 0, tc.Add(-timeutil.Days(2)), 40)
	e.Record(jt, 0, tc.Add(-timeutil.Days(12)), 10)
	e.Record(jt, 0, tc.Add(-timeutil.Days(8)), 20)
	r := e.EvaluateUser(0, tc)
	if r.Op <= 1 {
		t.Fatalf("rising trend not detected from unsorted input: %+v", r)
	}
}

func TestEvaluatorMultipleTypesMultiply(t *testing.T) {
	e := NewEvaluator(p7)
	a := e.AddType("job", Operation)
	b := e.AddType("login", Operation)
	// Rising trend on both op types → Φ_op is the product of two
	// ranks > 1.
	for _, tt := range []TypeID{a, b} {
		e.Record(tt, 0, tc.Add(-timeutil.Days(12)), 1)
		e.Record(tt, 0, tc.Add(-timeutil.Days(3)), 3)
	}
	r := e.EvaluateUser(0, tc)
	if math.Abs(r.Op-1.125*1.125) > 1e-9 {
		t.Fatalf("Φ_op = %v, want 1.125²", r.Op)
	}
}

func TestMatrix(t *testing.T) {
	ranks := []Rank{
		{Op: 2, Oc: 2, HasOp: true, HasOc: true},
		{Op: 2, Oc: 0, HasOp: true, HasOc: true},
		{Op: 0, Oc: 0, HasOp: true, HasOc: true},
		NewUserRank(),
	}
	m := NewMatrix(ranks)
	if m.Total != 4 {
		t.Fatalf("Total = %d", m.Total)
	}
	if m.Counts[BothActive] != 1 || m.Counts[OperationActiveOnly] != 1 || m.Counts[BothInactive] != 2 {
		t.Fatalf("Counts = %v", m.Counts)
	}
	if m.Share(BothInactive) != 0.5 {
		t.Fatalf("Share = %v", m.Share(BothInactive))
	}
	if (Matrix{}).Share(BothActive) != 0 {
		t.Fatal("empty matrix share should be 0")
	}
}

func TestGroupStrings(t *testing.T) {
	want := map[Group]string{
		BothInactive:        "Both Inactive",
		OutcomeActiveOnly:   "Outcome Active Only",
		OperationActiveOnly: "Operation Active Only",
		BothActive:          "Both Active",
	}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("%d.String() = %q, want %q", g, g.String(), s)
		}
	}
	if Operation.String() != "operation" || Outcome.String() != "outcome" {
		t.Error("Class strings wrong")
	}
	if len(Groups()) != NumGroups {
		t.Error("Groups() wrong length")
	}
}

func TestAuthorImpactMatchesRecordPublications(t *testing.T) {
	pub := trace.Publication{TS: tc.Add(-timeutil.Days(1)), Citations: 9, Authors: []trace.UserID{3, 4}}
	e := NewEvaluator(p7)
	pt := e.AddType("pub", Outcome)
	e.RecordPublications(pt, []trace.Publication{pub})
	// Both authors have a single activity in a single period → Φ = 1,
	// but the recorded impacts must match Eq. (8).
	for _, u := range pub.Authors {
		r := e.EvaluateUser(u, tc)
		if !r.HasOc || r.Oc != 1 {
			t.Errorf("user %d rank = %+v", u, r)
		}
	}
}

func TestRecordLoginsAndTransfers(t *testing.T) {
	e := NewEvaluator(p7)
	lt := e.AddType("shell-login", Operation)
	tt := e.AddType("data-transfer", Operation)
	e.RecordLogins(lt, []trace.Login{
		{User: 0, TS: tc.Add(-timeutil.Days(2))},
		{User: 0, TS: tc.Add(-timeutil.Days(1))},
	})
	e.RecordTransfers(tt, []trace.Transfer{
		{User: 0, TS: tc.Add(-timeutil.Days(3)), Dir: trace.TransferIn, Bytes: 10e9},
	})
	r := e.EvaluateUser(0, tc)
	if !r.HasOp {
		t.Fatal("logins/transfers not recorded as operations")
	}
	// Both histories sit in single periods → each Φ = 1 → product 1.
	if r.Op != 1 {
		t.Fatalf("Φ_op = %v, want 1", r.Op)
	}
	if r.HasOc {
		t.Fatal("operations leaked into outcomes")
	}
}
