package activeness

import (
	"math/rand"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// buildRandomEvaluator seeds an evaluator with two operation types
// and one outcome type of random histories for users [0, n).
func buildRandomEvaluator(rng *rand.Rand, n int) *Evaluator {
	e := NewEvaluator(timeutil.Days(90))
	jobs := e.AddType("jobs", Operation)
	logins := e.AddType("logins", Operation)
	pubs := e.AddType("pubs", Outcome)
	year := int64(timeutil.Days(365))
	for u := 0; u < n; u++ {
		for i, t := range []TypeID{jobs, logins, pubs} {
			if rng.Intn(4) == i { // some users lack some types
				continue
			}
			for j := 0; j < rng.Intn(40); j++ {
				e.Record(t, trace.UserID(u), timeutil.Time(rng.Int63n(2*year)), rng.Float64()*100)
			}
		}
	}
	return e
}

// TestCursorsMatchEvaluate is the memoization contract: across a
// monotone trigger schedule (and one backward jump), cursor-based
// ranks must be bit-identical to the direct evaluation — the replay's
// determinism proof depends on it.
func TestCursorsMatchEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const users = 40
	e := buildRandomEvaluator(rng, users)
	c := e.NewCursors()
	year := timeutil.Time(timeutil.Days(365))
	schedule := []timeutil.Time{0, year / 4, year / 2, year, year + 1, year / 3 /* backward */, 2 * year}
	for _, tc := range schedule {
		direct := e.EvaluateAll(users, tc)
		cursor := c.EvaluateAll(users, tc)
		for u := range direct {
			if direct[u] != cursor[u] {
				t.Fatalf("tc=%d user=%d: cursor rank %+v != direct %+v", tc, u, cursor[u], direct[u])
			}
		}
	}
}

// TestCursorsSingleUserAdvance checks per-user evaluation (the
// concurrent sharding entry point uses the direct path, but cursors
// must agree when driven user by user too).
func TestCursorsSingleUserAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := buildRandomEvaluator(rng, 10)
	c := e.NewCursors()
	for step := 0; step < 30; step++ {
		tc := timeutil.Time(int64(step) * int64(timeutil.Days(25)))
		u := trace.UserID(step % 10)
		if got, want := c.EvaluateUser(u, tc), e.EvaluateUser(u, tc); got != want {
			t.Fatalf("step %d user %d: %+v != %+v", step, u, got, want)
		}
	}
}
