package activeness

import (
	"math/rand"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// buildRandomEvaluator seeds an evaluator with two operation types
// and one outcome type of random histories for users [0, n).
func buildRandomEvaluator(rng *rand.Rand, n int) *Evaluator {
	e := NewEvaluator(timeutil.Days(90))
	jobs := e.AddType("jobs", Operation)
	logins := e.AddType("logins", Operation)
	pubs := e.AddType("pubs", Outcome)
	year := int64(timeutil.Days(365))
	for u := 0; u < n; u++ {
		for i, t := range []TypeID{jobs, logins, pubs} {
			if rng.Intn(4) == i { // some users lack some types
				continue
			}
			for j := 0; j < rng.Intn(40); j++ {
				e.Record(t, trace.UserID(u), timeutil.Time(rng.Int63n(2*year)), rng.Float64()*100)
			}
		}
	}
	return e
}

// TestCursorsMatchEvaluate is the memoization contract: across a
// monotone trigger schedule (and one backward jump), cursor-based
// ranks must be bit-identical to the direct evaluation — the replay's
// determinism proof depends on it.
func TestCursorsMatchEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const users = 40
	e := buildRandomEvaluator(rng, users)
	c := e.NewCursors()
	year := timeutil.Time(timeutil.Days(365))
	schedule := []timeutil.Time{0, year / 4, year / 2, year, year + 1, year / 3 /* backward */, 2 * year}
	for _, tc := range schedule {
		direct := e.EvaluateAll(users, tc)
		cursor := c.EvaluateAll(users, tc)
		for u := range direct {
			if direct[u] != cursor[u] {
				t.Fatalf("tc=%d user=%d: cursor rank %+v != direct %+v", tc, u, cursor[u], direct[u])
			}
		}
	}
}

// TestEvaluateUserMultiMatchesDedicated is the multiplexed-ranking
// contract: one cursor set answering N periods in a single pass must
// be bit-identical to N dedicated evaluators (one per period, same
// histories), across a monotone trigger schedule and one backward
// jump — the shared ranker in the multiplexed replay depends on it.
func TestEvaluateUserMultiMatchesDedicated(t *testing.T) {
	const users = 40
	periods := []timeutil.Duration{
		timeutil.Days(7), timeutil.Days(30), timeutil.Days(60),
		timeutil.Days(90), timeutil.Days(365),
	}
	// Identical histories in the multi-period evaluator and every
	// dedicated one: regenerate with the same seed.
	build := func(period timeutil.Duration) *Evaluator {
		rng := rand.New(rand.NewSource(31))
		e := NewEvaluator(period)
		jobs := e.AddType("jobs", Operation)
		logins := e.AddType("logins", Operation)
		pubs := e.AddType("pubs", Outcome)
		year := int64(timeutil.Days(365))
		for u := 0; u < users; u++ {
			for i, ty := range []TypeID{jobs, logins, pubs} {
				if rng.Intn(4) == i {
					continue
				}
				for j := 0; j < rng.Intn(40); j++ {
					e.Record(ty, trace.UserID(u), timeutil.Time(rng.Int63n(2*year)), rng.Float64()*100)
				}
			}
		}
		return e
	}

	multi := build(periods[0]).NewCursors()
	dedicated := make([]*Cursors, len(periods))
	for i, d := range periods {
		dedicated[i] = build(d).NewCursors()
	}

	year := timeutil.Time(timeutil.Days(365))
	schedule := []timeutil.Time{0, year / 4, year / 2, year, year + 1, year / 3 /* backward */, 2 * year}
	out := make([]Rank, len(periods))
	for _, tc := range schedule {
		for u := 0; u < users; u++ {
			multi.EvaluateUserMulti(trace.UserID(u), tc, periods, out)
			for pi := range periods {
				want := dedicated[pi].EvaluateUser(trace.UserID(u), tc)
				if out[pi] != want {
					t.Fatalf("tc=%d user=%d period=%v: multi rank %+v != dedicated %+v",
						tc, u, periods[pi], out[pi], want)
				}
			}
		}
	}
}

// TestCursorsSingleUserAdvance checks per-user evaluation (the
// concurrent sharding entry point uses the direct path, but cursors
// must agree when driven user by user too).
func TestCursorsSingleUserAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := buildRandomEvaluator(rng, 10)
	c := e.NewCursors()
	for step := 0; step < 30; step++ {
		tc := timeutil.Time(int64(step) * int64(timeutil.Days(25)))
		u := trace.UserID(step % 10)
		if got, want := c.EvaluateUser(u, tc), e.EvaluateUser(u, tc); got != want {
			t.Fatalf("step %d user %d: %+v != %+v", step, u, got, want)
		}
	}
}
