package activeness

import (
	"fmt"
	"sort"
	"strings"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// The paper argues for activeness over ML prediction partly because
// "the result ... is not as intuitively explainable as what system
// administrators need" (§3). Explain makes the rank auditable: for
// every activity type it exposes the period count m, the per-period
// impacts and activeness ratios b_e, and the resulting Φ_λ, so an
// administrator can answer "why was this user classified inactive?"
// from one table.

// PeriodDetail is one period's slice of a type rank.
type PeriodDetail struct {
	// Index is the 1-based period index e; m is the most recent.
	Index int
	// Impact is D_e, the summed impact of the period's activities.
	Impact float64
	// Ratio is b_e = D_e / Avg.
	Ratio float64
}

// TypeExplanation is the full evaluation trace of one activity type.
type TypeExplanation struct {
	Type TypeSpec
	// Activities counts the user's activities at or before tc;
	// InWindow counts those inside the m-period window.
	Activities int
	InWindow   int
	// M is the period count of Eq. (1); Avg the per-period average of
	// Eq. (2); Phi the resulting Φ_λ.
	M   int
	Avg float64
	Phi float64
	// Periods lists every period, oldest (e=1) first.
	Periods []PeriodDetail
}

// Explanation is a user's full activeness audit at one instant.
type Explanation struct {
	User  trace.UserID
	At    timeutil.Time
	Rank  Rank
	Types []TypeExplanation
}

// Explain audits the rank evaluation of one user at time tc.
func (e *Evaluator) Explain(u trace.UserID, tc timeutil.Time) Explanation {
	e.ensureSorted()
	out := Explanation{User: u, At: tc, Rank: e.EvaluateUser(u, tc)}
	for t := range e.types {
		acts := e.data[t][u]
		k := sort.Search(len(acts), func(i int) bool { return acts[i].TS > tc })
		acts = acts[:k]
		te := TypeExplanation{Type: e.types[t], Activities: len(acts)}
		if len(acts) == 0 {
			te.Phi = 1.0 // the initial rank
			out.Types = append(out.Types, te)
			continue
		}
		te.M = timeutil.PeriodCount(acts[0].TS, acts[len(acts)-1].TS, e.period)
		var total float64
		for i := range acts {
			total += acts[i].Impact
		}
		te.Avg = total / float64(te.M)
		dp := make([]float64, te.M+1)
		for i := range acts {
			idx := timeutil.PeriodIndex(tc, acts[i].TS, te.M, e.period)
			if idx >= 1 && idx <= te.M {
				dp[idx] += acts[i].Impact
				te.InWindow++
			}
		}
		for idx := 1; idx <= te.M; idx++ {
			ratio := 0.0
			if te.Avg > 0 {
				ratio = dp[idx] / te.Avg
			}
			te.Periods = append(te.Periods, PeriodDetail{Index: idx, Impact: dp[idx], Ratio: ratio})
		}
		te.Phi = TypeRank(acts, tc, e.period)
		out.Types = append(out.Types, te)
	}
	return out
}

// String renders the audit as an administrator-facing report.
func (x Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "user %d at %s: group=%s Φ_op=%.4g Φ_oc=%.4g\n",
		x.User, x.At.DateString(), x.Rank.Group(), x.Rank.Op, x.Rank.Oc)
	for _, te := range x.Types {
		fmt.Fprintf(&b, "  %s (%s): Φ=%.4g, %d activities (%d in window), m=%d, avg=%.4g\n",
			te.Type.Name, te.Type.Class, te.Phi, te.Activities, te.InWindow, te.M, te.Avg)
		if len(te.Periods) == 0 {
			continue
		}
		// Render at most the 12 most recent periods; the old tail of a
		// long history is rarely the interesting part.
		first := 0
		if len(te.Periods) > 12 {
			first = len(te.Periods) - 12
			fmt.Fprintf(&b, "    … %d older periods elided …\n", first)
		}
		for _, p := range te.Periods[first:] {
			marker := ""
			if p.Impact == 0 {
				marker = "  ← empty period zeroes Φ"
			}
			fmt.Fprintf(&b, "    period e=%-3d D=%-12.4g b=%.4g%s\n", p.Index, p.Impact, p.Ratio, marker)
		}
	}
	return b.String()
}
