package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FlagValidateAnalyzer enforces the PR-5 fail-fast contract in cmd/
// packages: every registered flag whose value can be garbage must be
// reachable from the package's validation path. A flag nobody
// validates is a flag that silently accepts nonsense — the simulator
// once ran whole sweeps with a mistyped -interval because parsing
// succeeded and nothing range-checked it.
//
// Mechanics: a registration (flag.String, flag.IntVar, ...) binds a
// target variable — the returned pointer's variable or the *Var
// pointee, including an options-struct field. The validation closure
// is every function whose name contains "validate", expanded through
// package-local calls. The target must be referenced somewhere in
// that closure.
//
// Exempt kinds, where parse success already implies a usable value:
//
//   - Bool/BoolVar — both parsed values are valid.
//   - Uint64/Uint64Var — full-range seeds; no garbage subrange.
//   - Var/TextVar/Func — the custom Set/UnmarshalText rejects garbage
//     at parse time.
var FlagValidateAnalyzer = &Analyzer{
	Name: "flagvalidate",
	Doc:  "cmd flags must be reachable from the package's validation path",
	Run:  runFlagValidate,
}

// flagRegFuncs maps flag.* registration functions to the argument
// index of the bound pointer (-1 = the call's result is the pointer).
var flagRegFuncs = map[string]int{
	"String": -1, "Int": -1, "Int64": -1, "Uint": -1,
	"Float64": -1, "Duration": -1,
	"StringVar": 0, "IntVar": 0, "Int64Var": 0, "UintVar": 0,
	"Float64Var": 0, "DurationVar": 0,
}

func runFlagValidate(pass *Pass) {
	if !hasPathSegment(pass.Path, "cmd") {
		return
	}
	closure := validationClosure(pass)
	validated := make(map[*types.Var]bool)
	for _, fd := range closure {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				validated[v] = true
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isPackageFunc(pass, sel) {
				return true
			}
			pkg, _ := sel.X.(*ast.Ident)
			if obj, ok := pass.Info.Uses[pkg].(*types.PkgName); !ok || obj.Imported().Path() != "flag" {
				return true
			}
			argIdx, ok := flagRegFuncs[sel.Sel.Name]
			if !ok {
				return true
			}
			target, flagName := registrationTarget(pass, call, argIdx)
			if flagName == "" {
				flagName = "?"
			}
			if target == nil {
				// Result dropped or bound to something we cannot
				// name: unreachable by definition.
				pass.Reportf(call.Pos(), "flag -%s (%s) is bound to no nameable variable, so no validation path can reach it", flagName, sel.Sel.Name)
				return true
			}
			if len(closure) == 0 {
				pass.Reportf(call.Pos(), "flag -%s registered but package has no validation function (PR-5 fail-fast contract)", flagName)
				return true
			}
			if !validated[target] {
				pass.Reportf(call.Pos(), "flag -%s (%s) is never referenced from the validation path", flagName, target.Name())
			}
			return true
		})
	}
}

// validationClosure returns the package's validation functions — any
// function whose name contains "validate" (case-insensitive) —
// expanded transitively through package-local calls.
func validationClosure(pass *Pass) []*ast.FuncDecl {
	decls := packageFuncDecls(pass)
	byObj := make(map[*types.Func]bool)
	var queue, out []*types.Func
	// Seed in file order, not map order, so the closure (and any
	// diagnostics downstream) is deterministic.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !strings.Contains(strings.ToLower(obj.Name()), "validate") {
				continue
			}
			byObj[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		out = append(out, obj)
		ast.Inspect(decls[obj].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *types.Func
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee, _ = pass.Info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = pass.Info.Uses[fun.Sel].(*types.Func)
			}
			if callee != nil && decls[callee] != nil && !byObj[callee] {
				byObj[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	fds := make([]*ast.FuncDecl, len(out))
	for i, obj := range out {
		fds[i] = decls[obj]
	}
	return fds
}

// registrationTarget resolves the variable a flag registration binds
// and the flag's name string. argIdx -1 means the call result is the
// pointer (v := flag.String(...)); otherwise args[argIdx] is &target.
func registrationTarget(pass *Pass, call *ast.CallExpr, argIdx int) (*types.Var, string) {
	nameIdx := 0
	if argIdx >= 0 {
		nameIdx = 1
	}
	flagName := ""
	if len(call.Args) > nameIdx {
		if lit, ok := call.Args[nameIdx].(*ast.BasicLit); ok {
			flagName = strings.Trim(lit.Value, `"`)
		}
	}
	if argIdx >= 0 {
		if len(call.Args) <= argIdx {
			return nil, flagName
		}
		return exprVar(pass, call.Args[argIdx]), flagName
	}
	// Result form: find the enclosing assignment/value spec.
	if v := resultBinding(pass, call); v != nil {
		return v, flagName
	}
	return nil, flagName
}

// resultBinding finds the variable that captures call's result by
// scanning the file for `x := call` / `var x = call` shapes.
func resultBinding(pass *Pass, call *ast.CallExpr) *types.Var {
	for _, f := range pass.Files {
		if call.Pos() < f.Pos() || call.End() > f.End() {
			continue
		}
		var found *types.Var
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if rhs == call && i < len(n.Lhs) {
						found = lhsVar(pass, n.Lhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range n.Values {
					if rhs == call && i < len(n.Names) {
						found, _ = pass.Info.Defs[n.Names[i]].(*types.Var)
					}
				}
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// hasPathSegment reports whether one of path's slash-separated
// segments equals seg (so "cmd" matches x/cmd/y but not x/cmdutil).
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// lhsVar resolves an assignment LHS to its variable object.
func lhsVar(pass *Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Defs[e].(*types.Var); ok {
			return v
		}
		v, _ := pass.Info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		return exprVar(pass, e)
	}
	return nil
}
