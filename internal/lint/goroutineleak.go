package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeakAnalyzer flags fire-and-forget goroutines: a `go`
// statement whose goroutine publishes no join signal — no
// WaitGroup.Done, no channel close/send, nothing the spawning package
// ever waits on. Such goroutines outlive replay determinism windows
// and leak across daemon shutdown; the repo's contract is that all
// fan-out goes through internal/parallel (which owns its joins) or
// carries an explicit join edge.
//
// The check is structural, not a full happens-before proof:
//
//   - signal: inside the spawned function (the literal's body, or a
//     one-level peek into a package-local callee), a WaitGroup.Done,
//     channel close, or channel send on some object O.
//   - join: anywhere in the package, a Wait on the same WaitGroup or
//     a receive/range/select on the same channel object.
//
// Both present → joined. Signal with no consumer, or no signal at
// all → finding. internal/parallel is exempt (it is the join
// machinery), as is spawning through a parallel.Pool.
var GoroutineLeakAnalyzer = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement needs a join edge (WaitGroup, channel, or Pool)",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	if pathHasSuffix(pass.Path, "internal/parallel") {
		return
	}
	decls := packageFuncDecls(pass)
	consumed := collectJoinWaits(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body == nil {
				// Callee outside the package (or dynamic): assume the
				// callee owns its lifecycle — flagging every
				// cross-package spawn would drown real findings.
				return true
			}
			signals := joinSignals(pass, body)
			if len(signals) == 0 {
				pass.Reportf(g.Pos(), "fire-and-forget goroutine: no join signal (WaitGroup.Done, channel close/send) in the spawned function")
				return true
			}
			for _, obj := range signals {
				if consumed[obj] {
					return true
				}
			}
			pass.Reportf(g.Pos(), "goroutine signals %s but nothing in the package waits on it: add the join edge or drop the signal", signals[0].Name())
			return true
		})
	}
}

// packageFuncDecls indexes this package's function declarations by
// their types.Func object, for the one-level peek.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// spawnedBody resolves the body of the function a go statement runs:
// the literal itself, or the declaration of a package-local callee.
func spawnedBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// joinSignals collects the WaitGroup/channel objects the spawned body
// signals on: wg.Done(), close(ch), ch <- v.
func joinSignals(pass *Pass, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	add := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				add(exprVar(pass, n.Args[0]))
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroup(pass, sel.X) {
				add(exprVar(pass, sel.X))
			}
		case *ast.SendStmt:
			add(exprVar(pass, n.Chan))
		}
		return true
	})
	return out
}

// collectJoinWaits gathers every object the package waits on:
// wg.Wait() receivers, receive/range sources, select comm channels.
func collectJoinWaits(pass *Pass) map[*types.Var]bool {
	waited := make(map[*types.Var]bool)
	add := func(v *types.Var) {
		if v != nil {
			waited[v] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroup(pass, sel.X) {
					add(exprVar(pass, sel.X))
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					add(exprVar(pass, n.X))
				}
			case *ast.RangeStmt:
				add(exprVar(pass, n.X))
			}
			return true
		})
	}
	return waited
}

// exprVar resolves an expression to the variable object it names: a
// plain identifier or a field selector. Other shapes return nil.
func exprVar(pass *Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := pass.Info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := pass.Info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.ParenExpr:
		return exprVar(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return exprVar(pass, e.X)
		}
	}
	return nil
}

// isWaitGroup reports whether e is a sync.WaitGroup (or pointer).
func isWaitGroup(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return typeString(t) == "sync.WaitGroup"
}
