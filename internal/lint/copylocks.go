package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CopyLocksAnalyzer flags values containing sync primitives
// (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map) passed, bound,
// assigned, or ranged by value. A copied lock guards nothing: the
// parallel pool's accumulators looked protected in review while two
// goroutines held two different mutexes. Our own go/types
// implementation, independent of go vet, so the invariant is
// enforced by the same gate as the repo-specific rules.
var CopyLocksAnalyzer = &Analyzer{
	Name: "copylocks",
	Doc:  "no sync.Mutex/WaitGroup-bearing values copied, passed, or returned by value",
	Run:  runCopyLocks,
}

var syncLockTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Pool": true, "sync.Map": true,
}

// lockComponent returns the rendered name of a sync primitive held
// by value inside t (possibly t itself), or "" when t is safe to
// copy. Pointers stop the search: sharing a *sync.Mutex is the
// intended use.
func lockComponent(t types.Type) string {
	return lockComponentRec(t, make(map[types.Type]bool))
}

func lockComponentRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if name := typeString(named); syncLockTypes[name] {
			return name
		}
		return lockComponentRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockComponentRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockComponentRec(u.Elem(), seen)
	}
	return ""
}

func runCopyLocks(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if name, ok := copiesLockValue(pass, r); ok {
						pass.Reportf(r.Pos(), "return copies a value containing %s", name)
					}
				}
			}
			return true
		})
	}
}

// checkFuncSig flags by-value receivers, parameters, and results
// whose types carry locks.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name := lockComponent(tv.Type); name != "" {
				pass.Reportf(field.Pos(), "%s passes a value containing %s by value; use a pointer", kind, name)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// copiesLockValue reports whether evaluating e yields a by-value
// copy of a lock-bearing value. Composite literals and address-of
// expressions initialize rather than copy; everything else that
// reads an existing lock-bearing value is a copy.
func copiesLockValue(pass *Pass, e ast.Expr) (string, bool) {
	switch e.(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
		return "", false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsType() {
		return "", false
	}
	if name := lockComponent(tv.Type); name != "" {
		return name, true
	}
	return "", false
}

func checkAssign(pass *Pass, n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		// Assigning to blank evaluates without retaining a copy.
		if len(n.Lhs) == len(n.Rhs) {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		if name, ok := copiesLockValue(pass, rhs); ok {
			pass.Reportf(rhs.Pos(), "assignment copies a value containing %s", name)
		}
	}
}

func checkCallArgs(pass *Pass, call *ast.CallExpr) {
	// Skip conversions and builtins: T(x) re-types, len/cap read.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	for _, arg := range call.Args {
		if name, ok := copiesLockValue(pass, arg); ok {
			pass.Reportf(arg.Pos(), "call passes a value containing %s by value", name)
		}
	}
}

// checkRangeCopy flags `for _, v := range xs` where v copies a
// lock-bearing element.
func checkRangeCopy(pass *Pass, rs *ast.RangeStmt) {
	if rs.Tok != token.DEFINE && rs.Tok != token.ASSIGN {
		return
	}
	check := func(e ast.Expr) {
		if e == nil {
			return
		}
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if rs.Tok == token.DEFINE {
			obj = pass.Info.Defs[id]
		} else {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			return
		}
		if name := lockComponent(obj.Type()); name != "" {
			pass.Reportf(e.Pos(), "range copies a value containing %s; range over indices or pointers", name)
		}
	}
	check(rs.Key)
	check(rs.Value)
}
