// Package lint is the repository's custom static-analysis framework:
// a stdlib-only loader (go/parser + go/ast + go/types, no x/tools)
// plus the analyzers that mechanically enforce the invariants the
// replayable emulation rests on — no wall clock or global randomness
// in deterministic packages, no map-iteration order leaking into
// output, no locks copied by value, no dropped writer errors on
// persistence paths, and no random source shared across goroutines
// without a Split. See DESIGN.md §9.
//
// Findings can be suppressed at a specific line with
//
//	//lint:allow <rule> <reason>
//
// either trailing the offending line or on the line immediately
// above it. The reason is mandatory: an inhibition without a written
// justification is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// String renders the diagnostic in the conventional
// file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Analyzer is one named invariant check run over a type-checked
// package.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the package's import path (or a directory-derived path
	// for fixture packages outside the module's package graph).
	Path string
	Pkg  *types.Package
	Info *types.Info

	rule string
	out  *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Rule: p.rule,
		File: position.Filename,
		Line: position.Line,
		Col:  position.Column,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		MapOrderAnalyzer,
		CopyLocksAnalyzer,
		UncheckedCloseAnalyzer,
		RandSplitAnalyzer,
		LockFlowAnalyzer,
		FsyncOrderAnalyzer,
		GoroutineLeakAnalyzer,
		FlagValidateAnalyzer,
		CheckpointFieldsAnalyzer,
	}
}

// AnalyzerNames returns the rule names of the full suite.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Check runs the given analyzers over one loaded package, applies
// //lint:allow suppressions, and returns the surviving diagnostics
// sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			rule:  a.Name,
			out:   &diags,
		}
		a.Run(pass)
	}
	allows, malformed := collectAllows(pkg)
	diags = append(suppress(diags, allows), malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// allowKey identifies one suppression site: a rule allowed at a
// specific file line.
type allowKey struct {
	file string
	line int
	rule string
}

const allowPrefix = "//lint:allow"

// collectAllows scans every comment in the package for
// //lint:allow directives. A well-formed directive suppresses its
// rule on the directive's own line and on the line immediately
// following (so it can trail the offending line or sit just above
// it). Malformed directives — missing rule or missing reason — are
// returned as diagnostics themselves so an empty justification can
// never silence a finding.
func collectAllows(pkg *Package) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if rule == "" || reason == "" {
					malformed = append(malformed, Diagnostic{
						Rule: "lint-allow",
						File: pos.Filename,
						Line: pos.Line,
						Col:  pos.Column,
						Msg:  "malformed //lint:allow: need a rule name and a reason",
					})
					continue
				}
				if !knownRule(rule) {
					malformed = append(malformed, Diagnostic{
						Rule: "lint-allow",
						File: pos.Filename,
						Line: pos.Line,
						Col:  pos.Column,
						Msg:  fmt.Sprintf("//lint:allow names unknown rule %q", rule),
					})
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, rule}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, rule}] = true
			}
		}
	}
	return allows, malformed
}

func knownRule(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// suppress drops diagnostics covered by an allow directive.
func suppress(diags []Diagnostic, allows map[allowKey]bool) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if allows[allowKey{d.File, d.Line, d.Rule}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// pathHasSuffix reports whether the import path is exactly suffix or
// ends with "/"+suffix — the matcher used to scope rules to package
// families (fixture packages under testdata reproduce the suffix, so
// golden tests exercise the same scoping as the real tree).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// typeString renders t relative to nothing (fully qualified).
func typeString(t types.Type) string {
	return types.TypeString(t, nil)
}
