package lint

import (
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags range-over-map loops whose bodies produce
// order-sensitive output — appending to a slice, writing to a
// writer/encoder, or building a string — because Go randomizes map
// iteration order and the replay contract requires bit-identical
// output. The canonical collect-then-sort idiom is recognized: a
// loop that only appends is clean when a later statement in the
// same block sorts the destination slice.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "no map-iteration order leaking into slices, writers, or strings",
	Run:  runMapOrder,
}

// orderSinkMethods are method names whose invocation inside a
// range-over-map body emits output in iteration order.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeElement": true, "Fprint": true, "Fprintf": true,
	"Fprintln": true, "Print": true, "Printf": true, "Println": true,
}

// orderSinkFuncs are package-level functions that emit output.
var orderSinkFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

// sortFuncs are the sort entry points that make a collected slice
// order-deterministic again. Values note which argument carries the
// slice (always 0 for these).
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Walk blocks so a flagged range statement can look at its
		// trailing siblings for the sort that redeems it.
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rs) {
					continue
				}
				checkMapRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
}

func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one range-over-map body. Nested function
// literals are included: output produced there still happens in
// iteration order.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	var appended []types.Object // slices appended to, in order seen
	clean := true               // no sink other than appends so far
	var firstSink ast.Node
	var sinkWhat string

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// s += expr on a string builds output in map order.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				clean = false
				if firstSink == nil {
					firstSink, sinkWhat = n, "string concatenation"
				}
			}
		case *ast.CallExpr:
			if obj := appendTarget(pass, n); obj != nil {
				appended = append(appended, obj)
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isPackageFunc(pass, sel) {
					if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && orderSinkFuncs[fn.FullName()] {
						clean = false
						if firstSink == nil {
							firstSink, sinkWhat = n, "call to "+fn.FullName()
						}
					}
					return true
				}
				if orderSinkMethods[sel.Sel.Name] {
					clean = false
					if firstSink == nil {
						firstSink, sinkWhat = n, "call to "+sel.Sel.Name
					}
				}
			}
		}
		return true
	})

	if !clean {
		pass.Reportf(rs.Pos(), "range over map produces order-sensitive output (%s): iterate sorted keys instead", sinkWhat)
		return
	}
	for _, obj := range appended {
		if !sortedAfter(pass, obj, rest) {
			pass.Reportf(rs.Pos(), "range over map appends to %q without a following sort: map iteration order leaks into the slice", obj.Name())
			return
		}
	}
}

// appendTarget returns the object of the slice variable grown by a
// `dst = append(dst, ...)` style call, or nil when call is not an
// append into an identifiable variable.
func appendTarget(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return rootObject(pass, call.Args[0])
}

// rootObject resolves an expression to the variable at its root:
// x, x.f, x[i] all resolve to x.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.Info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether any statement in rest calls a sort
// function mentioning obj.
func sortedAfter(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !sortFuncs[fn.FullName()] {
				return true
			}
			for _, arg := range call.Args {
				hit := false
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
						hit = true
						return false
					}
					return true
				})
				if hit {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isPackageFunc reports whether sel.X names an imported package
// (fmt.Fprintf) rather than a value (w.Write).
func isPackageFunc(pass *Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pass.Info.Uses[id].(*types.PkgName)
	return isPkg
}
