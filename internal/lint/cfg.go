package lint

// Intraprocedural control-flow graphs over go/ast, the substrate the
// flow-sensitive analyzers (lockflow, fsyncorder) run their dataflow
// fixpoints on. No SSA: blocks hold the original AST statements (and
// condition expressions) in execution order, which is exactly enough
// for the small lattices the repo's invariants need. See DESIGN.md
// §14.
//
// Modeling decisions:
//
//   - if/for/range/switch/select/goto/labeled break+continue build
//     real edges; both arms of every branch are assumed feasible.
//   - `return` ends its block with an edge to the synthetic Exit.
//   - `panic(...)`, os.Exit, log.Fatal* and runtime.Goexit terminate
//     the path (edge to Exit, no fallthrough).
//   - DeferStmt is an ordinary node at its registration point; the
//     analyzer decides what the deferred call means at Exit.
//   - Function literals are opaque values here: their bodies get
//     their own CFGs and are never inlined into the enclosing graph.
//   - Statements syntactically present but unreachable (after a
//     return) still get blocks, just without predecessors, so every
//     statement of the body lives in exactly one block (pinned by
//     TestCFGPartition).

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes with one entry and
// one exit. Nodes are ast.Stmt or, for branch conditions and
// switch/select guards, ast.Expr.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, dense).
	Index int
	// Nodes holds the block's statements and condition expressions in
	// execution order.
	Nodes []ast.Node
	// Succs are the possible successors. Terminated blocks (return,
	// panic) have exactly the Exit block as successor.
	Succs []*Block
	// preds counts incoming edges (Exit's count includes terminators).
	preds int
}

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry. Order is
	// deterministic (construction order, which follows the source).
	Blocks []*Block
	// Exit is the synthetic exit block (always the last block, empty).
	// Falling off the end of the body, `return`, and terminating calls
	// all edge here.
	Exit *Block
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Reachable reports which blocks are reachable from the entry, by
// index. The synthetic Exit is reachable iff some path reaches it.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{c.Entry()}
	seen[c.Entry().Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// NewCFG builds the graph for one function body. info may be nil;
// when present it sharpens terminator detection (os.Exit through an
// import alias still terminates).
func NewCFG(body *ast.BlockStmt, terminates func(*ast.CallExpr) bool) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		terminates: terminates,
		labels:     make(map[string]*labelBlocks),
	}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	exit := b.newBlock()
	b.cfg.Exit = exit
	// Falling off the end of the body is an implicit return.
	b.jump(exit)
	// Resolve forward gotos; an unresolved label is a parse-level
	// error Go itself rejects, but stay total anyway.
	for _, g := range b.pendingGotos {
		if lb := b.labels[g.label]; lb != nil && lb.target != nil {
			b.edge(g.from, lb.target)
		} else {
			b.edge(g.from, exit)
		}
	}
	// Terminator edges recorded before Exit existed.
	for _, from := range b.pendingExits {
		b.edge(from, exit)
	}
	return b.cfg
}

// labelBlocks tracks the blocks a label can transfer control to.
type labelBlocks struct {
	target     *Block // goto / labeled-statement entry
	breakTo    *Block // labeled break target (after the construct)
	continueTo *Block // labeled continue target (loop head)
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block // nil while the current point is unreachable
	terminates func(*ast.CallExpr) bool

	// break/continue stacks: innermost target last.
	breaks    []*Block
	continues []*Block
	// label bookkeeping for labeled loops, gotos, labeled breaks.
	labels       map[string]*labelBlocks
	pendingGotos []pendingGoto
	pendingExits []*Block
	// nextLabel names the label attached to the statement about to be
	// compiled, so its loop registers labeled break/continue targets.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.preds++
}

// jump links the current block to target and leaves the current point
// unreachable (the caller starts a new block if more code follows).
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock begins a new block, linking it from the current one.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, starting a parentless
// block for syntactically unreachable code.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// exitEdge ends the current path at the (not yet built) Exit block.
func (b *cfgBuilder) exitEdge() {
	if b.cur != nil {
		b.pendingExits = append(b.pendingExits, b.cur)
	}
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a join point: backward gotos and the labeled
		// statement itself both enter here.
		lb := b.labels[s.Label.Name]
		if lb == nil {
			lb = &labelBlocks{}
			b.labels[s.Label.Name] = lb
		}
		target := b.startBlock()
		lb.target = target
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		// Then arm.
		b.cur = b.newBlock()
		b.edge(condBlk, b.cur)
		b.stmtList(s.Body.List)
		b.jump(after)
		// Else arm (or straight to after).
		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(condBlk, b.cur)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		label := b.takeLabel()
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		condBlk := b.cur
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(condBlk, after) // condition false
		}
		b.registerLoop(label, head, after, post)
		b.cur = b.newBlock()
		b.edge(condBlk, b.cur)
		b.pushLoop(after, post)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(post)
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock()
		// The RangeStmt itself models the per-iteration evaluation
		// (key/value assignment, channel receive).
		b.add(s)
		headBlk := b.cur
		after := b.newBlock()
		b.edge(headBlk, after) // range exhausted
		b.registerLoop(label, head, after, head)
		b.cur = b.newBlock()
		b.edge(headBlk, b.cur)
		b.pushLoop(after, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		// The guard (`v := x.(type)`) evaluates in the dispatch block.
		b.switchStmt(s.Init, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.startBlock()
		after := b.newBlock()
		if label != "" {
			b.labels[label].breakTo = after
		}
		b.breaks = append(b.breaks, after)
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			b.cur = b.newBlock()
			b.edge(dispatch, b.cur)
			if c.Comm != nil {
				b.add(c.Comm)
			}
			b.stmtList(c.Body)
			b.jump(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no clauses blocks forever; give it the edge
		// anyway so the graph stays connected and analyses terminate.
		if len(s.Body.List) == 0 {
			b.edge(dispatch, after)
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.exitEdge()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lb := b.labels[s.Label.Name]; lb != nil && lb.breakTo != nil {
					b.jump(lb.breakTo)
					return
				}
			} else if len(b.breaks) > 0 {
				b.jump(b.breaks[len(b.breaks)-1])
				return
			}
			b.exitEdge() // malformed; stay total
		case token.CONTINUE:
			if s.Label != nil {
				if lb := b.labels[s.Label.Name]; lb != nil && lb.continueTo != nil {
					b.jump(lb.continueTo)
					return
				}
			} else if len(b.continues) > 0 {
				b.jump(b.continues[len(b.continues)-1])
				return
			}
			b.exitEdge()
		case token.GOTO:
			if b.cur != nil {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchStmt's clause sequencing; as a plain
			// statement (malformed) it just continues.
		}

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates != nil && b.terminates(call) {
			b.exitEdge()
		}

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchStmt compiles expression and type switches: dispatch block
// evaluates init+tag (or the type-switch guard), every clause is a
// dispatch successor, fallthrough chains clause bodies, break (and
// exhausting a body) exits to after.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	label := b.takeLabel()
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.startBlock()
	}
	after := b.newBlock()
	if label != "" {
		b.labels[label].breakTo = after
	}
	b.breaks = append(b.breaks, after)

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cc := range body.List {
		clauses = append(clauses, cc.(*ast.CaseClause))
	}
	// Build each clause body; remember entry blocks for fallthrough.
	entries := make([]*Block, len(clauses))
	exits := make([]*Block, len(clauses)) // nil when body ends unreachable
	hasDefault := false
	for i, c := range clauses {
		if c.List == nil {
			hasDefault = true
		}
		b.cur = b.newBlock()
		entries[i] = b.cur
		b.edge(dispatch, entries[i])
		for _, e := range c.List {
			b.add(e)
		}
		// A trailing fallthrough transfers to the next clause body
		// instead of after; the branch node stays in the graph.
		list := c.Body
		var fallNode ast.Stmt
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallNode = br
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if fallNode != nil {
			b.add(fallNode)
			exits[i] = b.cur
		} else {
			b.jump(after)
			exits[i] = nil
		}
	}
	for i, e := range exits {
		if e != nil && i+1 < len(entries) {
			b.edge(e, entries[i+1])
		} else if e != nil {
			b.edge(e, after)
		}
	}
	if !hasDefault {
		// No default: the tag can match nothing.
		b.edge(dispatch, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) registerLoop(label string, head, after, cont *Block) {
	if label == "" {
		return
	}
	lb := b.labels[label]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[label] = lb
	}
	lb.breakTo = after
	lb.continueTo = cont
	_ = head
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}
