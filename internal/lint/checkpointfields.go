package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckpointFieldsAnalyzer is the round-trip exhaustiveness check for
// the repo's persisted state: every exported field of a
// checkpoint/WAL-encoded struct must be referenced in both the encode
// and the decode path. Adding a field to checkpointState and
// populating it in saveCheckpoint while forgetting loadCheckpoint
// compiles, replays, and silently loses state on every resume — the
// exact bug class the v2→v3 checkpoint migration was built to avoid.
//
// The audited codecs are declared in checkpointCodecs. Reference
// means any identifier resolving to the field object — a selector
// (cs.Cursor) or a keyed composite-literal key (Cursor: ...) — inside
// the named function's body. Matching is by object identity, so a
// same-named field of an anonymous local struct (loadCheckpoint's
// base-chain peek) does not count.
var CheckpointFieldsAnalyzer = &Analyzer{
	Name: "checkpointfields",
	Doc:  "persisted-struct fields must appear in both encode and decode paths",
	Run:  runCheckpointFields,
}

// checkpointCodec names one persisted struct and its codec functions.
type checkpointCodec struct {
	pkgSuffix string // package path suffix the codec lives in
	structNm  string
	encodeFn  string
	decodeFn  string
}

// checkpointCodecs is the audit table. New persisted formats get a
// row here as part of the PR that introduces them.
var checkpointCodecs = []checkpointCodec{
	{"internal/sim", "checkpointState", "saveCheckpoint", "loadCheckpoint"},
	{"internal/daemon", "Event", "Encode", "ParseEvent"},
	{"internal/trace", "SnapshotEntry", "WriteSnapshot", "parseSnapshotLine"},
}

func runCheckpointFields(pass *Pass) {
	for _, codec := range checkpointCodecs {
		if pathHasSuffix(pass.Path, codec.pkgSuffix) {
			checkCodec(pass, codec)
		}
	}
}

func checkCodec(pass *Pass, codec checkpointCodec) {
	st, pos := lookupStruct(pass, codec.structNm)
	if st == nil {
		return
	}
	encode := findFuncBody(pass, codec.encodeFn)
	decode := findFuncBody(pass, codec.decodeFn)
	if encode == nil || decode == nil {
		// Codec half missing entirely: renamed without updating the
		// table, or the struct predates its codec. Either way the
		// audit cannot run, which must not pass silently.
		pass.Reportf(pos, "checkpoint codec for %s not found (want functions %s and %s): update checkpointCodecs in internal/lint", codec.structNm, codec.encodeFn, codec.decodeFn)
		return
	}
	encRefs := fieldRefs(pass, encode)
	decRefs := fieldRefs(pass, decode)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		inEnc, inDec := encRefs[f], decRefs[f]
		switch {
		case !inEnc && !inDec:
			pass.Reportf(pos, "field %s.%s appears in neither %s nor %s: dead weight or missed round-trip", codec.structNm, f.Name(), codec.encodeFn, codec.decodeFn)
		case !inEnc:
			pass.Reportf(pos, "field %s.%s is read by %s but never written by %s: it round-trips as a zero value", codec.structNm, f.Name(), codec.decodeFn, codec.encodeFn)
		case !inDec:
			pass.Reportf(pos, "field %s.%s is written by %s but never read by %s: state is silently dropped on resume", codec.structNm, f.Name(), codec.encodeFn, codec.decodeFn)
		}
	}
}

// lookupStruct finds a struct type by name in the package scope.
func lookupStruct(pass *Pass, name string) (*types.Struct, token.Pos) {
	obj := pass.Pkg.Scope().Lookup(name)
	if obj == nil {
		return nil, 0
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, 0
	}
	return st, obj.Pos()
}

// findFuncBody locates a function or method body by bare name.
func findFuncBody(pass *Pass, name string) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// fieldRefs collects every struct-field object referenced in body —
// selector uses and keyed composite-literal keys both resolve through
// Info.Uses to the field's *types.Var.
func fieldRefs(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() {
			refs[v] = true
		}
		return true
	})
	return refs
}
