package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedCloseAnalyzer flags dropped errors from Close, Flush,
// Write, and WriteString method calls on the persistence paths —
// internal/trace (trace and report encoding), internal/sim
// (checkpointing), and the cmd/* tools. A checkpoint whose final
// Flush error vanishes is a checkpoint that silently fails to
// resume. `defer x.Close()` is tolerated for Close only: the
// deferred-read-side close is idiomatic and the write-side code here
// funnels through closeAll/errors.Join instead.
var UncheckedCloseAnalyzer = &Analyzer{
	Name: "unchecked-close",
	Doc:  "no dropped errors from Close/Flush/Write on persistence paths",
	Run:  runUncheckedClose,
}

var uncheckedClosePkgs = []string{"internal/trace", "internal/sim", "internal/wal", "internal/daemon"}

var errorDroppers = map[string]bool{
	"Close": true, "Flush": true, "Write": true, "WriteString": true,
}

func uncheckedClosePackage(path string) bool {
	for _, p := range uncheckedClosePkgs {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	// All command-line tools: they own the final writes of reports,
	// benchmarks, and checkpoints.
	return strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/")
}

func runUncheckedClose(pass *Pass) {
	if !uncheckedClosePackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedCall(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, " in defer")
				return false
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, " in go statement")
				return false
			}
			return true
		})
	}
}

// checkDroppedCall flags a statement-position method call whose
// error result is discarded. how names the dropping context ("",
// " in defer", " in go statement").
func checkDroppedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errorDroppers[sel.Sel.Name] {
		return
	}
	if isPackageFunc(pass, sel) {
		return // fmt.Println etc. — not a writer method
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !returnsError(fn) {
		return
	}
	if neverFailsWriter(pass, sel.X) {
		return // strings.Builder / bytes.Buffer document a nil error
	}
	if how == " in defer" && sel.Sel.Name == "Close" {
		return
	}
	pass.Reportf(call.Pos(), "error from %s dropped%s: a failed %s loses buffered data silently", sel.Sel.Name, how, sel.Sel.Name)
}

// neverFailsWriter reports whether recv is a strings.Builder or
// bytes.Buffer (possibly behind a pointer), whose Write methods are
// documented to always return a nil error.
func neverFailsWriter(pass *Pass, recv ast.Expr) bool {
	tv, ok := pass.Info.Types[recv]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	name := typeString(t)
	return name == "strings.Builder" || name == "bytes.Buffer"
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && typeString(named) == "error"
}
