package lint

import (
	"strings"
	"testing"
	"unicode"
)

// TestParseAllow pins the directive grammar, including the shapes the
// fuzzer once had to find by luck.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text, rule, reason string
		ok                 bool
	}{
		{"//lint:allow nondeterminism timing probe", "nondeterminism", "timing probe", true},
		{"//lint:allow maporder", "maporder", "", true},
		{"//lint:allow", "", "", true},
		{"//lint:allow   ", "", "", true},
		{"//lint:allow\trule\treason words here", "rule", "reason words here", true},
		{"//lint:allowlist is unrelated", "", "", false},
		{"// lint:allow spaced marker is no directive", "", "", false},
		{"//nolint:allow other tool", "", "", false},
		{"plain text", "", "", false},
		{"", "", "", false},
	}
	for _, c := range cases {
		rule, reason, ok := parseAllow(c.text)
		if rule != c.rule || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, rule, reason, ok, c.rule, c.reason, c.ok)
		}
	}
}

// FuzzParseAllow asserts the parser's invariants over arbitrary
// comment text: no panic, directives are only recognized with the
// exact marker, and the parsed pieces are whitespace-normalized
// substrings of the input.
func FuzzParseAllow(f *testing.F) {
	f.Add("//lint:allow nondeterminism timing probe")
	f.Add("//lint:allow maporder")
	f.Add("//lint:allow")
	f.Add("//lint:allowlist")
	f.Add("//lint:allow \t rule  multi  word\treason")
	f.Add("// ordinary comment")
	f.Add("//lint:allow rule \x00\xff")
	f.Fuzz(func(t *testing.T, text string) {
		rule, reason, ok := parseAllow(text)
		if !ok {
			if rule != "" || reason != "" {
				t.Fatalf("parseAllow(%q): non-directive returned rule=%q reason=%q", text, rule, reason)
			}
			return
		}
		if !strings.HasPrefix(text, allowPrefix) {
			t.Fatalf("parseAllow(%q): ok without the %q marker", text, allowPrefix)
		}
		rest := strings.TrimPrefix(text, allowPrefix)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			t.Fatalf("parseAllow(%q): marker not followed by whitespace, still ok", text)
		}
		for _, r := range rule {
			if unicode.IsSpace(r) {
				t.Fatalf("parseAllow(%q): rule %q contains whitespace", text, rule)
			}
		}
		if rule == "" && reason != "" {
			t.Fatalf("parseAllow(%q): reason %q without a rule", text, reason)
		}
		if rule != "" && !strings.Contains(text, rule) {
			t.Fatalf("parseAllow(%q): rule %q is not a substring of the input", text, rule)
		}
		// The reason round-trips as whitespace-normalized fields.
		if reason != "" {
			wantFields := strings.Fields(rest)[1:]
			if got := strings.Fields(reason); strings.Join(got, " ") != strings.Join(wantFields, " ") {
				t.Fatalf("parseAllow(%q): reason %q does not match fields %v", text, reason, wantFields)
			}
		}
	})
}
