package lint

import "strings"

// parseAllow parses one comment's text as a //lint:allow directive.
// ok is false when the comment is not an allow directive at all
// (including "//lint:allowx", which is some other marker, not a
// sloppy allow). For a directive, rule is the first token after the
// marker and reason the rest; either may be empty — the caller
// decides whether an incomplete directive is malformed or merely
// listed.
func parseAllow(text string) (rule, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, allowPrefix)
	if !found {
		return "", "", false
	}
	// The marker must stand alone: "//lint:allow" then whitespace (or
	// nothing). Without this, an unrelated "//lint:allowlist" comment
	// would parse as rule "list".
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// Suppression is one //lint:allow directive found in a package,
// well-formed or not — the audit mode lists and judges them all.
type Suppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	// KnownRule is false when Rule names no registered analyzer — a
	// stale directive that silences nothing and must not survive.
	KnownRule bool `json:"known_rule"`
}

// Suppressions scans every comment in pkg for //lint:allow
// directives. Results are in file order.
func Suppressions(pkg *Package) []Suppression {
	var out []Suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, Suppression{
					File:      pos.Filename,
					Line:      pos.Line,
					Rule:      rule,
					Reason:    reason,
					KnownRule: knownRule(rule),
				})
			}
		}
	}
	return out
}
