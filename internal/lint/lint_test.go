package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("internal/lint/testdata/src", rel)
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", rel, len(pkgs))
	}
	return pkgs[0]
}

// wantRe matches one `// want "re1" "re2"` expectation comment.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants extracts expectations from every fixture file.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, arg[1], err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkGolden runs one analyzer over a fixture and matches the
// diagnostics one-to-one against the fixture's want comments.
func checkGolden(t *testing.T, fixture string, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := Check(pkg, []*Analyzer{a})
	wants := parseWants(t, pkg)

outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Msg) {
				w.hit = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestNondeterminismGolden(t *testing.T) {
	checkGolden(t, "nondeterminism/internal/sim", NondeterminismAnalyzer)
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, "maporder/m", MapOrderAnalyzer)
}

func TestCopyLocksGolden(t *testing.T) {
	checkGolden(t, "copylocks/c", CopyLocksAnalyzer)
}

func TestUncheckedCloseGolden(t *testing.T) {
	checkGolden(t, "uncheckedclose/internal/trace", UncheckedCloseAnalyzer)
}

func TestRandSplitGolden(t *testing.T) {
	checkGolden(t, "randsplit/r", RandSplitAnalyzer)
}

func TestLockFlowGolden(t *testing.T) {
	checkGolden(t, "lockflow/l", LockFlowAnalyzer)
}

func TestFsyncOrderGolden(t *testing.T) {
	checkGolden(t, "fsyncorder/internal/wal", FsyncOrderAnalyzer)
}

func TestGoroutineLeakGolden(t *testing.T) {
	checkGolden(t, "goroutineleak/g", GoroutineLeakAnalyzer)
}

func TestFlagValidateGolden(t *testing.T) {
	checkGolden(t, "flagvalidate/cmd/app", FlagValidateAnalyzer)
}

func TestCheckpointFieldsGolden(t *testing.T) {
	checkGolden(t, "checkpointfields/internal/sim", CheckpointFieldsAnalyzer)
}

// TestSuppression pins the exact surviving diagnostics of the
// suppress fixture: well-formed directives silence their line,
// malformed or unknown-rule directives surface themselves and leave
// the finding alive.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress/internal/sim")
	diags := Check(pkg, []*Analyzer{NondeterminismAnalyzer})

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s@%s", d.Rule, markerFor(t, pkg, d.Line)))
	}
	want := []string{
		"lint-allow@MissingReason-directive",
		"nondeterminism@MissingReason-finding",
		"lint-allow@UnknownRule-directive",
		"nondeterminism@UnknownRule-finding",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("suppression diagnostics:\n got %v\nwant %v", got, want)
	}
}

// markerFor labels a fixture line by content so the test is not
// coupled to line numbers.
func markerFor(t *testing.T, pkg *Package, line int) string {
	t.Helper()
	name := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if line < 1 || line > len(lines) {
		return fmt.Sprintf("line%d", line)
	}
	text := lines[line-1]
	// Walk back to the nearest enclosing func to name the site.
	fn := "?"
	for i := line - 1; i >= 0; i-- {
		if strings.HasPrefix(lines[i], "func ") {
			fn = strings.TrimSuffix(strings.SplitN(strings.TrimPrefix(lines[i], "func "), "(", 2)[0], " ")
			break
		}
	}
	if strings.Contains(text, "//lint:allow") && !strings.Contains(text, "time.") {
		return fn + "-directive"
	}
	return fn + "-finding"
}

// TestAllowlistMalformedKnownRules guards the rule registry: every
// analyzer name must be allowable.
func TestAllowlistKnownRules(t *testing.T) {
	for _, name := range AnalyzerNames() {
		if !knownRule(name) {
			t.Errorf("rule %q not recognized by knownRule", name)
		}
	}
	if knownRule("nosuchrule") {
		t.Error("knownRule accepted a bogus rule name")
	}
}

// TestSelfCheck proves vetadr is clean over the whole repository at
// HEAD: the invariants hold, with every legitimate exception
// explicitly annotated.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check type-checks the entire module from source")
	}
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("self-check loaded only %d packages; loader lost the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range Check(pkg, Analyzers()) {
			t.Errorf("HEAD not clean: %s", d)
		}
	}
}
