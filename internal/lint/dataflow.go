package lint

// A small forward-dataflow engine over the CFGs in cfg.go. Analyzers
// parameterize it with their own lattice: a fact type F, a transfer
// function over individual AST nodes, a join for control-flow merges,
// and an equality test that bounds the fixpoint. Lattices here are
// tiny (a held-lock set, a dirty bit), so the plain worklist with
// per-node transfer is both simple and fast enough to run over the
// whole module on every CI push.

import "go/ast"

// Flow defines one forward analysis.
type Flow[F any] struct {
	// Entry is the fact at the function's entry block.
	Entry F
	// Unreached is the fact given to blocks no edge has reached yet
	// (the lattice bottom); it must be the Join identity.
	Unreached F
	// Transfer folds one block node (statement or condition
	// expression) into the incoming fact. It must not mutate in.
	Transfer func(n ast.Node, in F) F
	// Join merges facts at control-flow merges (may-analysis: union;
	// must-analysis: intersection).
	Join func(a, b F) F
	// Equal bounds the fixpoint: iteration stops when every block's
	// input fact is stable under Equal.
	Equal func(a, b F) bool
}

// Forward runs the fixpoint and returns the fact at entry to each
// block, indexed like cfg.Blocks. Unreachable blocks keep Unreached.
func Forward[F any](cfg *CFG, f Flow[F]) []F {
	in := make([]F, len(cfg.Blocks))
	seen := make([]bool, len(cfg.Blocks))
	for i := range in {
		in[i] = f.Unreached
	}
	entry := cfg.Entry()
	in[entry.Index] = f.Entry
	seen[entry.Index] = true

	work := []*Block{entry}
	queued := make([]bool, len(cfg.Blocks))
	queued[entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := in[b.Index]
		for _, n := range b.Nodes {
			out = f.Transfer(n, out)
		}
		for _, s := range b.Succs {
			next := out
			if seen[s.Index] {
				next = f.Join(in[s.Index], out)
				if f.Equal(next, in[s.Index]) {
					continue
				}
			}
			in[s.Index] = next
			seen[s.Index] = true
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// FactsAt re-applies the transfer function inside each reachable
// block and hands the analyzer the fact in force just BEFORE every
// node, in execution order — the shape reporting wants ("was the lock
// held when this call ran?").
func FactsAt[F any](cfg *CFG, f Flow[F], in []F, visit func(n ast.Node, fact F)) {
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if !reach[b.Index] {
			continue
		}
		fact := in[b.Index]
		for _, n := range b.Nodes {
			visit(n, fact)
			fact = f.Transfer(n, fact)
		}
	}
}

// funcBodies yields every function body in the package — declarations
// and function literals alike — with the enclosing *ast.FuncDecl when
// there is one (nil for literals). Analyzers build one CFG per body.
func funcBodies(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n, nil, n.Body)
				}
			case *ast.FuncLit:
				fn(nil, n, n.Body)
			}
			return true
		})
	}
}

// terminatorFor returns the CFG terminator predicate for a package:
// builtin panic, os.Exit, runtime.Goexit, and log.Fatal* end a path.
func terminatorFor(pass *Pass) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			if !isPackageFunc(pass, fun) {
				return false
			}
			pkg, _ := fun.X.(*ast.Ident)
			if pkg == nil {
				return false
			}
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln" ||
				fun.Sel.Name == "Panic" || fun.Sel.Name == "Panicf" || fun.Sel.Name == "Panicln"):
				return true
			}
		}
		return false
	}
}
