// Package trace is an unchecked-close fixture: its directory path
// ends in internal/trace, one of the persistence packages the rule
// guards.
package trace

import "strings"

// W is a writer whose error results matter.
type W struct{}

// Close finalizes the writer.
func (W) Close() error { return nil }

// Flush drains buffered output.
func (W) Flush() error { return nil }

// Write emits one chunk.
func (W) Write(p []byte) (int, error) { return len(p), nil }

// silent is a closer whose Close returns nothing; dropping it is fine.
type silent struct{}

func (silent) Close() {}

// Dropped discards every error a writer reports.
func Dropped(w W) {
	w.Close()    // want "error from Close dropped"
	w.Flush()    // want "error from Flush dropped"
	w.Write(nil) // want "error from Write dropped"
}

// Checked handles each error.
func Checked(w W) error {
	if _, err := w.Write(nil); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// DeferredClose is the tolerated read-side idiom.
func DeferredClose(w W) {
	defer w.Close()
}

// DeferredFlush loses the error irrecoverably.
func DeferredFlush(w W) {
	defer w.Flush() // want "error from Flush dropped in defer"
}

// Background flushes on another goroutine, dropping the error.
func Background(w W) {
	go w.Flush() // want "error from Flush dropped in go statement"
}

// NoError drops a Close that has nothing to report.
func NoError(s silent) {
	s.Close()
}

// Builder writes never fail; dropping them is idiomatic.
func Builder() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}
