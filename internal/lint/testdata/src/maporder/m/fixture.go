// Package m is a maporder-rule fixture: map iteration feeding
// order-sensitive sinks, with and without the redeeming sort.
package m

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// LeakyKeys appends map keys and never sorts them.
func LeakyKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to \"keys\" without a following sort"
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the sanctioned collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump writes values in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want "order-sensitive output \(call to fmt.Fprintf\)"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Joined builds a string in iteration order.
func Joined(m map[string]bool) string {
	s := ""
	for k := range m { // want "order-sensitive output \(string concatenation\)"
		s += k
	}
	return s
}

// Built streams into a strings.Builder in iteration order.
func Built(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want "order-sensitive output \(call to WriteString\)"
		b.WriteString(k)
	}
	return b.String()
}

// Totals is order-insensitive: integer sums commute.
func Totals(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes to another map: no order leaks.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
