// Package c is a copylocks-rule fixture: sync primitives crossing
// value boundaries.
package c

import "sync"

// Guarded embeds a mutex by value, as a guarded struct should.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue takes the lock-bearing struct by value.
func ByValue(g Guarded) int { // want "parameter passes a value containing sync.Mutex by value"
	return g.n
}

// ByPointer shares the lock correctly.
func ByPointer(g *Guarded) int { return g.n }

// ValueReceiver copies its receiver's mutex on every call.
func (g Guarded) ValueReceiver() int { return g.n } // want "receiver passes a value containing sync.Mutex by value"

// Returned hands out a copy of the guarded state.
func Returned(g *Guarded) Guarded { // want "result passes a value containing sync.Mutex by value"
	return *g // want "return copies a value containing sync.Mutex"
}

// Reassigned copies a live lock between variables.
func Reassigned(g *Guarded) {
	snapshot := *g // want "assignment copies a value containing sync.Mutex"
	_ = snapshot
}

// waitSet embeds a WaitGroup so element copies are flagged.
type waitSet struct {
	wg sync.WaitGroup
}

// RangeCopies copies each element's embedded WaitGroup.
func RangeCopies(xs []waitSet) {
	for _, x := range xs { // want "range copies a value containing sync.WaitGroup"
		_ = x
	}
}

// Passed forwards a lock-bearing value into a call.
func Passed(g *Guarded) {
	sink(*g) // want "call passes a value containing sync.Mutex by value"
}

func sink(Guarded) {} // want "parameter passes a value containing sync.Mutex by value"

// Fresh initializes in place: composite literals are not copies.
func Fresh() *Guarded {
	g := Guarded{n: 1}
	return &g
}
