// Package wal is the fsyncorder fixture: its path suffix puts it
// under the durability contract, and every function here contains
// both write and sync effects so the gate admits it.
package wal

import (
	"bufio"
	"os"
)

// AckBeforeSync acknowledges on the fast path before the fsync runs.
func AckBeforeSync(f *os.File, b []byte, fast bool) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if fast {
		return nil // want "success return reachable with unsynced writes"
	}
	return f.Sync()
}

// SyncThenWrite fsyncs first and writes after: the bytes the caller
// is told are durable never hit the platter.
func SyncThenWrite(f *os.File, b []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	return nil // want "success return reachable with unsynced writes"
}

// FlushIsNotSync drains the bufio buffer into the kernel and calls
// that durable; only the strict path ever fsyncs.
func FlushIsNotSync(f *os.File, w *bufio.Writer, b []byte, strict bool) error {
	if strict {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return nil // want "success return reachable with unsynced writes"
}

// WriteThenSync is the contract done right: every success return sits
// behind the fsync.
func WriteThenSync(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// ErrorPathsMayStayDirty returns errors without syncing — failure
// acks promise nothing — and syncs before the one success return.
func ErrorPathsMayStayDirty(f *os.File, b []byte) error {
	n, err := f.Write(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return os.ErrInvalid
	}
	return f.Sync()
}
