// Package l is the lockflow fixture: held locks spanning blocking
// operations and early returns that leak the lock, plus the clean
// shapes the rule must stay silent on.
package l

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type server struct {
	mu    sync.RWMutex
	state map[string]int
}

func writeJSON(w http.ResponseWriter, v any) {
	_ = v
	w.WriteHeader(http.StatusOK)
}

// RespondUnderLock answers the client while still holding the mutex:
// a slow client stalls every other request on s.mu.
func (s *server) RespondUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.state) // want "held lock s.mu spans an HTTP response write"
}

// SleepUnderRead holds the read lock across a sleep.
func (s *server) SleepUnderRead(d time.Duration) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	time.Sleep(d) // want "held read lock s.mu spans time.Sleep"
	return len(s.state)
}

// LeakOnError returns early without releasing the lock.
func (s *server) LeakOnError(path string) error {
	s.mu.Lock()
	if s.state == nil {
		return os.ErrInvalid // want "lock s.mu may still be held at this return"
	}
	s.state[path]++
	s.mu.Unlock()
	return nil
}

// SendUnderLock publishes on a channel while holding the mutex; a
// full channel deadlocks every other holder.
func (s *server) SendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- len(s.state) // want "held lock s.mu spans a channel send"
	s.mu.Unlock()
}

// FileIOUnderLock flushes a file with the mutex held.
func (s *server) FileIOUnderLock(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync() // want "held lock s.mu spans .*os.File.*Sync"
}

// CopyThenRespond is the clean shape: snapshot under the lock,
// release, then do the slow write.
func (s *server) CopyThenRespond(w http.ResponseWriter) {
	s.mu.RLock()
	n := len(s.state)
	s.mu.RUnlock()
	writeJSON(w, n)
}

// DeferCovered releases on every path through the deferred unlock and
// never blocks while holding it.
func (s *server) DeferCovered(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.state[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// NonBlockingSelect probes a channel under the lock, but the default
// clause makes the receive non-blocking.
func (s *server) NonBlockingSelect(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

// BranchesBothUnlock releases on every path before the blocking call.
func (s *server) BranchesBothUnlock(w http.ResponseWriter, ok bool) {
	s.mu.Lock()
	if ok {
		s.mu.Unlock()
		writeJSON(w, 1)
		return
	}
	s.mu.Unlock()
	writeJSON(w, 0)
}
