// Package main is the flagvalidate fixture: a cmd-shaped package with
// validated, unvalidated, and exempt flag registrations.
package main

import (
	"errors"
	"flag"
	"time"
)

type options struct {
	interval time.Duration
	target   float64
	dataPath string
	workers  int
}

var verbose = flag.Bool("v", false, "verbose output")

var seed = flag.Uint64("seed", 1, "rng seed")

func parseFlags(o *options) {
	flag.DurationVar(&o.interval, "interval", time.Hour, "scan interval")
	flag.Float64Var(&o.target, "target", 0.8, "usage target")
	flag.StringVar(&o.dataPath, "data", "", "trace path") // want "flag -data .* never referenced from the validation path"
	flag.IntVar(&o.workers, "workers", 4, "worker count") // want "flag -workers .* never referenced from the validation path"
	name := flag.String("name", "", "run label")          // want "flag -name .* never referenced from the validation path"
	_ = name
	flag.Parse()
}

func (o *options) validate() error {
	if o.interval <= 0 {
		return errors.New("interval must be positive")
	}
	return checkTarget(o)
}

// checkTarget is reached from validate: flags referenced here count
// as validated through the closure expansion.
func checkTarget(o *options) error {
	if o.target <= 0 || o.target > 1 {
		return errors.New("target must be in (0,1]")
	}
	return nil
}

func main() {
	var o options
	parseFlags(&o)
	if err := o.validate(); err != nil {
		panic(err)
	}
	_ = *verbose
	_ = *seed
}
