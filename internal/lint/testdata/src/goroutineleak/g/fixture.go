// Package g is the goroutineleak fixture: spawns with and without
// join edges, through literals, local functions, and methods.
package g

import "sync"

type svc struct {
	done chan struct{}
	out  chan int
}

func work()           {}
func backgroundScan() {}

// FireAndForget spawns a literal that signals nothing.
func FireAndForget() {
	go func() { // want "fire-and-forget goroutine: no join signal"
		work()
	}()
}

// SpawnLocalNoSignal spawns a package-local function with no signal
// in its body (one-level peek).
func SpawnLocalNoSignal() {
	go backgroundScan() // want "fire-and-forget goroutine: no join signal"
}

// SignalNobodyConsumes sends on a channel no function in the package
// ever receives from.
func SignalNobodyConsumes() {
	orphan := make(chan int, 1)
	go func() { // want "goroutine signals orphan but nothing in the package waits"
		orphan <- 1
	}()
}

// WaitGroupJoined is the canonical fan-out: Done in the goroutine,
// Wait in the spawner.
func WaitGroupJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// ChannelJoined closes a done channel the spawner receives on.
func ChannelJoined() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// MethodJoinedAcrossFuncs spawns a method whose close signal is
// consumed by a different method of the same type: the join edge is
// package-wide, not function-local.
func (s *svc) Start() {
	go s.run()
}

func (s *svc) run() {
	defer close(s.done)
	for v := range s.out {
		_ = v
	}
}

func (s *svc) Stop() {
	close(s.out)
	<-s.done
}
