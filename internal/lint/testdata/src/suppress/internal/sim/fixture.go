// Package sim is the suppression fixture: //lint:allow directives in
// every position and state of repair. The golden test asserts the
// exact surviving diagnostics programmatically, since want-comments
// cannot trail directive comments.
package sim

import "time"

// TrailingAllow suppresses on the offending line itself.
func TrailingAllow() time.Duration {
	start := time.Now()      //lint:allow nondeterminism timing probe justified for the fixture
	return time.Since(start) //lint:allow nondeterminism timing probe justified for the fixture
}

// PrecedingAllow suppresses from the line above.
func PrecedingAllow() int64 {
	//lint:allow nondeterminism timing probe justified for the fixture
	return time.Now().UnixNano()
}

// MissingReason must not suppress: the directive below has no
// justification, so both the directive and the finding surface.
func MissingReason() int64 {
	//lint:allow nondeterminism
	return time.Now().UnixNano()
}

// UnknownRule must not suppress either.
func UnknownRule() int64 {
	//lint:allow nosuchrule because reasons
	return time.Now().UnixNano()
}
