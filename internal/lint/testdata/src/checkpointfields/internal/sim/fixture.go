// Package sim is the checkpointfields fixture: a checkpointState
// whose save and load halves disagree about three fields, plus an
// anonymous same-named decoy the object-identity matching must not
// credit.
package sim

import "encoding/json"

type checkpointState struct { // want "field checkpointState.At is written by saveCheckpoint but never read by loadCheckpoint" "field checkpointState.Legacy is read by loadCheckpoint but never written by saveCheckpoint" "field checkpointState.Orphan appears in neither saveCheckpoint nor loadCheckpoint"
	Version int    `json:"version"`
	Cursor  int    `json:"cursor"`
	At      int64  `json:"at"`
	Legacy  string `json:"legacy"`
	Orphan  bool   `json:"orphan"`
	digest  string // unexported: not part of the audited surface
}

func saveCheckpoint(cursor int, at int64) ([]byte, error) {
	cs := checkpointState{
		Version: 3,
		Cursor:  cursor,
		At:      at,
	}
	cs.digest = "d"
	return json.Marshal(&cs)
}

func loadCheckpoint(blob []byte) (int, string, error) {
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		return 0, "", err
	}
	if cs.Version != 3 {
		return 0, "", json.Unmarshal(nil, nil)
	}
	// Same-named field of a local struct: must not count as reading
	// checkpointState.At.
	var peek struct {
		At int64 `json:"at"`
	}
	_ = json.Unmarshal(blob, &peek)
	_ = peek.At
	return cs.Cursor, cs.Legacy, nil
}
