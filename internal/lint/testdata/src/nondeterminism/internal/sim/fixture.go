// Package sim is a nondeterminism-rule fixture: its directory path
// ends in internal/sim, so the rule scopes it exactly like the real
// replay emulator package.
package sim

import (
	"math/rand" // want "import of math/rand in deterministic package"
	"time"
)

// Stamp holds a wall-clock field the rule must reject.
type Stamp struct {
	Taken time.Time // want "time.Time in deterministic package"
}

// Elapse reads the wall clock twice.
func Elapse() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	work()
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Jittered draws from the global math/rand source.
func Jittered() int {
	return rand.Intn(10)
}

// Durations alone are fine: a time.Duration is a value, not a clock.
func work() time.Duration { return 5 * time.Second }

// NowFunc stores a clock function by reference, not just by call.
var NowFunc = time.Now // want "time.Now reads the wall clock"
