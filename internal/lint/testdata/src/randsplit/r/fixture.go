// Package r is a rand-split-per-goroutine fixture: shared
// randx.Source values crossing goroutine boundaries.
package r

import (
	"activedr/internal/parallel"
	"activedr/internal/randx"
)

// SharedCapture leaks one source into a goroutine.
func SharedCapture(done chan struct{}) {
	src := randx.New(1)
	go func() {
		_ = src.Uint64() // want "goroutine literal captures shared \*randx.Source \"src\""
		close(done)
	}()
}

// SplitCapture derives a child stream on the capture path.
func SplitCapture(done chan struct{}) {
	src := randx.New(1)
	go func() {
		child := src.Split()
		_ = child.Uint64()
		close(done)
	}()
}

// OwnSource builds its stream inside the goroutine.
func OwnSource(done chan struct{}) {
	go func() {
		src := randx.New(1)
		_ = src.Uint64()
		close(done)
	}()
}

// PoolCallback leaks one source into every rank.
func PoolCallback(pool *parallel.Pool, n int) error {
	src := randx.New(1)
	return pool.RunShards(n, func(rank, lo, hi int) error {
		_ = src.Uint64() // want "parallel.Pool callback captures shared \*randx.Source \"src\""
		return nil
	})
}

// PoolTasks leaks one source into the task list.
func PoolTasks(pool *parallel.Pool) error {
	src := randx.New(1)
	return pool.Run([]func() error{
		func() error {
			_ = src.Uint64() // want "parallel.Pool callback captures shared \*randx.Source \"src\""
			return nil
		},
	})
}

// PoolSplit seeds each rank with an independent child.
func PoolSplit(pool *parallel.Pool, n int) error {
	src := randx.New(1)
	children := make([]*randx.Source, n)
	for i := range children {
		children[i] = src.Split()
	}
	return pool.RunShards(n, func(rank, lo, hi int) error {
		_ = children[rank].Uint64()
		return nil
	})
}
