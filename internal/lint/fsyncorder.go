package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncOrderAnalyzer enforces the PR-6 durability contract inside
// internal/wal and internal/daemon: a function that both writes and
// syncs must not reach a success return on a path where writes are
// still unsynced. The chaos harness catches ordering bugs
// probabilistically; this catches them at push time.
//
// Scope is deliberately narrow. Only functions that contain BOTH a
// write effect (os.File/wal writes, wal.Log.Append) and a sync effect
// (Sync methods, fsx.SyncFile/SyncDir, package-local sync* helpers)
// are analyzed: such a function has opted into ordering durability
// itself, so returning success with the dirty bit set is a bug.
// Functions that only write leave durability to their caller — that
// contract (e.g. wal.Append is not durable until Sync) is the
// documented API shape, not a finding.
var FsyncOrderAnalyzer = &Analyzer{
	Name: "fsyncorder",
	Doc:  "in wal/daemon, success returns must not be reachable with unsynced writes",
	Run:  runFsyncOrder,
}

// fsyncOrderPackages are the package-path suffixes under the
// durability contract.
var fsyncOrderPackages = []string{"internal/wal", "internal/daemon"}

func runFsyncOrder(pass *Pass) {
	scoped := false
	for _, p := range fsyncOrderPackages {
		if pathHasSuffix(pass.Path, p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	funcBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		checkFsyncOrder(pass, decl, body)
	})
}

func checkFsyncOrder(pass *Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	if !hasWriteAndSync(pass, body) {
		return
	}
	cfg := NewCFG(body, terminatorFor(pass))

	flow := Flow[dirtyFact]{
		Entry:     dirtyClean,
		Unreached: dirtyUnreached,
		Transfer: func(n ast.Node, in dirtyFact) dirtyFact {
			if in == dirtyUnreached {
				return in
			}
			out := in
			forEachCall(n, func(call *ast.CallExpr) {
				switch {
				case isSyncEffect(pass, call):
					out = dirtyClean
				case isWriteEffect(pass, call):
					out = dirtyDirty
				}
			})
			return out
		},
		Join: func(a, b dirtyFact) dirtyFact {
			// May-analysis: dirty on either path is dirty.
			if a == dirtyUnreached {
				return b
			}
			if b == dirtyUnreached {
				return a
			}
			if a == dirtyDirty || b == dirtyDirty {
				return dirtyDirty
			}
			return dirtyClean
		},
		Equal: func(a, b dirtyFact) bool { return a == b },
	}
	in := Forward(cfg, flow)

	resultsError := funcReturnsError(pass, decl)
	FactsAt(cfg, flow, in, func(n ast.Node, fact dirtyFact) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		// The return expression itself may sync ("return l.f.Sync()"):
		// apply its effects before judging.
		fact = flow.Transfer(n, fact)
		if fact != dirtyDirty {
			return
		}
		if !isSuccessReturn(ret, resultsError) {
			return
		}
		pass.Reportf(ret.Pos(), "success return reachable with unsynced writes: sync before acknowledging (durability contract)")
	})
}

type dirtyFact int8

const (
	dirtyUnreached dirtyFact = iota
	dirtyClean
	dirtyDirty
)

// hasWriteAndSync gates the analysis on bodies that contain both
// effect kinds outside nested function literals.
func hasWriteAndSync(pass *Pass, body *ast.BlockStmt) bool {
	write, sync := false, false
	forEachCall(body, func(call *ast.CallExpr) {
		if isWriteEffect(pass, call) {
			write = true
		}
		if isSyncEffect(pass, call) {
			sync = true
		}
	})
	return write && sync
}

// isWriteEffect reports whether call puts bytes somewhere durable
// storage has not seen yet: *os.File writes, or wal.Log Append/Write.
func isWriteEffect(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || isPackageFunc(pass, sel) {
		return false
	}
	name := sel.Sel.Name
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch {
	case typeString(t) == "os.File":
		switch name {
		case "Write", "WriteAt", "WriteString", "Truncate":
			return true
		}
	case isWALLog(t):
		switch name {
		case "Append", "Write":
			return true
		}
	case typeString(t) == "bufio.Writer":
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Flush":
			// Flush moves bytes to the kernel, not to the platter: it
			// is still a write effect, never a sync effect.
			return true
		}
	}
	return false
}

// isSyncEffect reports whether call makes prior writes durable: any
// callee whose name starts with "sync" (Sync, SyncFile, SyncDir,
// syncLocked) — fsync wrappers and package-local sync helpers alike.
func isSyncEffect(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.HasPrefix(strings.ToLower(name), "sync")
}

// isWALLog reports whether t is internal/wal.Log.
func isWALLog(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Log" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/wal")
}

// funcReturnsError reports whether the function's last result is an
// error. Function literals (decl == nil) are treated as error-less:
// every return is a potential success path.
func funcReturnsError(pass *Pass, decl *ast.FuncDecl) bool {
	if decl == nil || decl.Type.Results == nil || len(decl.Type.Results.List) == 0 {
		return false
	}
	last := decl.Type.Results.List[len(decl.Type.Results.List)-1]
	tv, ok := pass.Info.Types[last.Type]
	if !ok || tv.Type == nil {
		return false
	}
	return typeString(tv.Type) == "error"
}

// isSuccessReturn reports whether ret signals success: the final
// result is a nil literal when the function returns an error, or any
// return when it does not. Named-result bare returns are conservative
// non-findings (the error's value is unknown).
func isSuccessReturn(ret *ast.ReturnStmt, resultsError bool) bool {
	if !resultsError {
		return true
	}
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "nil"
}
