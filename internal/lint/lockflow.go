package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockFlowAnalyzer runs a forward may-held dataflow over every
// function's CFG and reports two invariant violations:
//
//  1. a path exists on which a held sync.Mutex/RWMutex spans a
//     blocking call — file or network I/O, a channel operation, a
//     parallel.Pool fan-out, or a sleep. The daemon serves reads
//     under the same mutex the applier mutates under; a lock held
//     across I/O turns one slow client or disk stall into a
//     service-wide stall.
//  2. an early return on which the lock is still held and no
//     deferred Unlock covers it — the classic missed-unlock leak.
//
// The analysis is intraprocedural and defer-aware: `defer
// mu.Unlock()` registers an exit-time release on every path after the
// defer executes. Function literals get their own graphs and do not
// inherit the enclosing function's held set (a literal handed to
// another goroutine runs without the spawner's locks; the synchronous
// -callback case is the accepted blind spot, DESIGN.md §14).
var LockFlowAnalyzer = &Analyzer{
	Name: "lockflow",
	Doc:  "no held mutex spans a blocking call; every path to return releases or defers",
	Run:  runLockFlow,
}

// lockFact is the per-program-point fact: the set of may-held locks
// and the set of must-deferred unlocks, keyed by the canonical lock
// expression ("d.mu", "r.mu#r" for read locks). nil = unreached.
type lockFact struct {
	held     map[string]bool
	deferred map[string]bool
}

func (f *lockFact) clone() *lockFact {
	g := &lockFact{held: make(map[string]bool, len(f.held)), deferred: make(map[string]bool, len(f.deferred))}
	for k := range f.held {
		g.held[k] = true
	}
	for k := range f.deferred {
		g.deferred[k] = true
	}
	return g
}

func runLockFlow(pass *Pass) {
	funcBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		checkLockFlow(pass, body)
	})
}

func checkLockFlow(pass *Pass, body *ast.BlockStmt) {
	// Fast path: a body that never calls Lock needs no graph.
	if !mentionsLock(pass, body) {
		return
	}
	cfg := NewCFG(body, terminatorFor(pass))
	nonBlockingComm := selectCommsWithDefault(body)

	flow := Flow[*lockFact]{
		Entry:     &lockFact{held: map[string]bool{}, deferred: map[string]bool{}},
		Unreached: nil,
		Transfer: func(n ast.Node, in *lockFact) *lockFact {
			if in == nil {
				return nil
			}
			out := in
			cow := func() {
				if out == in {
					out = in.clone()
				}
			}
			if d, ok := n.(*ast.DeferStmt); ok {
				if key, op := lockOp(pass, d.Call); op == opUnlock {
					cow()
					out.deferred[key] = true
				}
				return out
			}
			forEachCall(n, func(call *ast.CallExpr) {
				key, op := lockOp(pass, call)
				switch op {
				case opLock:
					cow()
					out.held[key] = true
				case opUnlock:
					if out.held[key] {
						cow()
						delete(out.held, key)
					}
				}
			})
			return out
		},
		Join: func(a, b *lockFact) *lockFact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			j := &lockFact{held: make(map[string]bool), deferred: make(map[string]bool)}
			for k := range a.held {
				j.held[k] = true
			}
			for k := range b.held {
				j.held[k] = true
			}
			for k := range a.deferred {
				if b.deferred[k] {
					j.deferred[k] = true
				}
			}
			return j
		},
		Equal: func(a, b *lockFact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if a == nil {
				return true
			}
			return setsEqual(a.held, b.held) && setsEqual(a.deferred, b.deferred)
		},
	}
	in := Forward(cfg, flow)

	FactsAt(cfg, flow, in, func(n ast.Node, fact *lockFact) {
		if fact == nil || len(fact.held) == 0 {
			return
		}
		// Invariant 1: a blocking operation under any held lock. The
		// expression of a return statement evaluates with the lock
		// still held, so returns are checked here too.
		if why := blockingOp(pass, n, nonBlockingComm); why != "" {
			for _, key := range sortedKeys(fact.held) {
				pass.Reportf(n.Pos(), "held %s spans %s: a stall here blocks every other holder", lockName(key), why)
			}
		}
		// Invariant 2: a return on a path with a held, non-deferred lock.
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, key := range sortedKeys(fact.held) {
				if !fact.deferred[key] {
					pass.Reportf(ret.Pos(), "%s may still be held at this return: unlock before returning or defer the Unlock", lockName(key))
				}
			}
		}
	})
}

// mentionsLock pre-screens a body for any Lock/RLock call.
func mentionsLock(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, op := lockOp(pass, call); op == opLock {
				found = true
			}
		}
		return true
	})
	return found
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as acquiring or releasing a sync lock and
// returns the canonical key of the lock expression.
func lockOp(pass *Pass, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind lockOpKind
	read := false
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind, read = opLock, true
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind, read = opUnlock, true
	default:
		return "", opNone
	}
	if !isSyncLock(pass, sel.X) {
		return "", opNone
	}
	key := exprKey(sel.X)
	if read {
		key += "#r"
	}
	return key, kind
}

// isSyncLock reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isSyncLock(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch typeString(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// exprKey canonicalizes a lock expression into a stable key: the
// dotted ident/selector path ("d.mu", "s.state.mu"). Unsupported
// shapes fall back to a positional key so distinct locks never merge.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	default:
		return "lock@" + itoa(int(e.Pos()))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// lockName renders a lock key for diagnostics.
func lockName(key string) string {
	if k, ok := strings.CutSuffix(key, "#r"); ok {
		return "read lock " + k
	}
	return "lock " + key
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// forEachCall visits every CallExpr syntactically inside n without
// descending into function literals (their bodies run elsewhere).
func forEachCall(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// selectCommsWithDefault collects the comm statements of selects that
// carry a default clause: those channel operations cannot block.
func selectCommsWithDefault(body *ast.BlockStmt) map[ast.Node]bool {
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cc := range sel.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, cc := range sel.Body.List {
				if comm := cc.(*ast.CommClause).Comm; comm != nil {
					exempt[comm] = true
				}
			}
		}
		return true
	})
	return exempt
}

// osFileBlocking are the *os.File methods that hit the disk.
var osFileBlocking = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Close": true, "Seek": true,
	"Truncate": true, "ReadDir": true,
}

// osPkgBlocking are the os package functions that hit the disk.
var osPkgBlocking = map[string]bool{
	"ReadFile": true, "WriteFile": true, "Open": true, "Create": true,
	"OpenFile": true, "ReadDir": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "Truncate": true,
}

// blockingOp classifies a CFG node as a blocking operation, returning
// a human-readable description ("" = not blocking). nonBlockingComm
// exempts channel operations inside a select with a default clause.
func blockingOp(pass *Pass, n ast.Node, nonBlockingComm map[ast.Node]bool) string {
	if nonBlockingComm[n] {
		return ""
	}
	switch s := n.(type) {
	case *ast.SendStmt:
		return "a channel send"
	case *ast.RangeStmt:
		if tv, ok := pass.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "a range over a channel"
			}
		}
		return ""
	case *ast.UnaryExpr:
		// A bare receive used as a condition node.
		if isChanRecv(pass, s) {
			return "a channel receive"
		}
		return ""
	}
	var why string
	forEachCall(n, func(call *ast.CallExpr) {
		if why != "" {
			return
		}
		why = blockingCall(pass, call)
	})
	if why != "" {
		return why
	}
	// Receives buried in assignments/conditions.
	found := ""
	ast.Inspect(n, func(m ast.Node) bool {
		if found != "" {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if nonBlockingComm[m] {
			return false
		}
		if u, ok := m.(*ast.UnaryExpr); ok && isChanRecv(pass, u) {
			found = "a channel receive"
			return false
		}
		return true
	})
	return found
}

func isChanRecv(pass *Pass, u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	tv, ok := pass.Info.Types[u.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// blockingCall classifies one call as blocking.
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	// Any call handed an http.ResponseWriter writes a response while
	// it runs — network I/O to a client of unknown speed.
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && tv.Type != nil &&
			typeString(tv.Type) == "net/http.ResponseWriter" {
			return "an HTTP response write"
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if isPackageFunc(pass, sel) {
		pkg, _ := sel.X.(*ast.Ident)
		obj := pass.Info.Uses[pkg].(*types.PkgName)
		switch obj.Imported().Path() {
		case "time":
			if name == "Sleep" {
				return "time.Sleep"
			}
		case "os":
			if osPkgBlocking[name] {
				return "os." + name + " (file I/O)"
			}
		case "net":
			return "net." + name + " (network I/O)"
		case "net/http":
			return "net/http." + name + " (network I/O)"
		default:
			if pathHasSuffix(obj.Imported().Path(), "internal/fsx") {
				return "fsx." + name + " (fsync I/O)"
			}
		}
		return ""
	}
	// Method calls / func-valued fields.
	if name == "Sleep" {
		return "a Sleep call"
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if typeString(t) == "net/http.ResponseWriter" {
		return "an HTTP response write"
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch {
	case typeString(t) == "os.File" && osFileBlocking[name]:
		return "(*os.File)." + name + " (file I/O)"
	case isParallelPool(t) && poolMethods[name]:
		return "parallel.Pool." + name + " (blocks until the workers finish)"
	}
	return ""
}

// isParallelPool reports whether t is internal/parallel.Pool.
func isParallelPool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/parallel")
}
