package lint

import (
	"bufio"
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the import path derived from the module root (fixture
	// packages under testdata get their directory-derived path, which
	// preserves any internal/<pkg> suffix the rules scope on).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so the (expensive) transitive stdlib
// type-check is paid once per run, not once per package.
type Loader struct {
	// ModuleRoot is the directory containing go.mod. Patterns are
	// resolved relative to it.
	ModuleRoot string
	// ModulePath is the module's import path from go.mod.
	ModulePath string
	// IncludeTests includes _test.go files. Off by default: tests
	// legitimately reach for wall clocks and dropped errors, and the
	// invariants guard production replay paths.
	IncludeTests bool

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader locates the enclosing module starting from dir (or the
// working directory when dir is empty).
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		// The "source" compiler importer type-checks dependencies from
		// source; inside a module it resolves module-local import
		// paths through the go tool, so vetadr needs no compiled
		// export data and no dependency beyond the stdlib.
		imp: importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("lint: no go.mod found in any parent directory")
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns — "./...", "dir/...", or plain
// package directories — and returns the parsed, type-checked
// packages in deterministic (path-sorted) order. Walked patterns
// skip testdata, vendor, and hidden directories; naming a directory
// explicitly always loads it, which is how the golden tests reach
// the fixture packages.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = l.ModuleRoot
			}
			if !filepath.IsAbs(base) {
				base = filepath.Join(l.ModuleRoot, base)
			}
			walked, err := walkPackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(l.ModuleRoot, d)
		}
		add(d)
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkPackageDirs returns every directory under root containing at
// least one non-test .go file, skipping testdata, vendor, and hidden
// directories.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isGoSource(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isGoSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// buildTagSatisfied evaluates one //go:build tag against the host
// platform, the way the loader's single-configuration type-check sees
// it: GOOS/GOARCH of the running binary, "unix" for unix-like GOOS
// values, and every go1.N release tag (the toolchain compiling the
// linter satisfies the module's language version by construction).
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		switch runtime.GOOS {
		case "aix", "android", "darwin", "dragonfly", "freebsd", "hurd",
			"illumos", "ios", "linux", "netbsd", "openbsd", "solaris":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1")
}

// excludedByBuildConstraint reports whether path carries a //go:build
// line that rules this platform out. Platform-split files (e.g.
// fsx's mmap_linux.go / mmap_other.go pair) otherwise load into one
// package and collide on their shared declarations. Only the modern
// //go:build form is honored; unparseable or absent constraints keep
// the file in, matching the loader's permissive posture.
func excludedByBuildConstraint(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return false
		}
		return !expr.Eval(buildTagSatisfied)
	}
	return false
}

// loadDir parses and type-checks the single package in dir. It
// returns nil (no error) for directories with no matching Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !isGoSource(e.Name()) {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if excludedByBuildConstraint(filepath.Join(dir, e.Name())) {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		// A directory can host both "foo" and (black-box) "foo_test"
		// packages; keep the first (non-test) package's files.
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}

	importPath := l.importPathFor(dir)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{
		Dir:   dir,
		Path:  importPath,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPathFor derives the import path of dir from the module root.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}
