package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RandSplitAnalyzer flags a *randx.Source captured by a goroutine
// literal or by a function literal handed to parallel.Pool without
// deriving a child stream via Split(). A SplitMix64 source is not
// safe for concurrent use, and even a data-race-free interleaving
// destroys replay determinism: the draw order depends on the
// scheduler. The accepted capture is src.Split() on the capture
// path — each worker owns an independent child stream.
var RandSplitAnalyzer = &Analyzer{
	Name: "rand-split-per-goroutine",
	Doc:  "no *randx.Source shared into goroutines or pool callbacks without Split()",
	Run:  runRandSplit,
}

// poolMethods are the parallel.Pool entry points that run their
// function arguments on other goroutines.
var poolMethods = map[string]bool{
	"RunShards": true, "ForEachShard": true, "TimedShards": true, "Run": true,
}

func runRandSplit(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCapturedSources(pass, lit, "goroutine literal")
				}
				for _, arg := range n.Call.Args {
					forEachFuncLit(arg, func(lit *ast.FuncLit) {
						checkCapturedSources(pass, lit, "goroutine argument")
					})
				}
			case *ast.CallExpr:
				if !isPoolCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					forEachFuncLit(arg, func(lit *ast.FuncLit) {
						checkCapturedSources(pass, lit, "parallel.Pool callback")
					})
				}
			}
			return true
		})
	}
}

// isPoolCall reports whether call invokes a concurrency method on
// *parallel.Pool (matched by type name so fixtures under testdata
// with their own path still resolve the real package).
func isPoolCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !poolMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/parallel")
}

// forEachFuncLit visits every function literal syntactically inside
// e (covering both a bare callback argument and literals inside a
// []func() error slice literal for Pool.Run).
func forEachFuncLit(e ast.Expr, fn func(*ast.FuncLit)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
			return false // a nested literal runs on the outer literal's goroutine
		}
		return true
	})
}

// checkCapturedSources reports uses, inside lit, of randx.Source
// variables declared outside it — unless the use is the receiver of
// a Split() call.
func checkCapturedSources(pass *Pass, lit *ast.FuncLit, where string) {
	// Receivers of .Split() are the sanctioned capture pattern.
	splitRecv := make(map[*ast.Ident]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Split" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			splitRecv[id] = true
		}
		return true
	})

	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || splitRecv[id] {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || reported[obj] {
			return true
		}
		if !isRandSource(obj.Type()) {
			return true
		}
		// Declared inside the literal (including its parameters)?
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), "%s captures shared *randx.Source %q: derive a child stream with %s.Split() outside the goroutine", where, obj.Name(), obj.Name())
		return true
	})
}

// isRandSource reports whether t is randx.Source or *randx.Source.
func isRandSource(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Source" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return pathHasSuffix(p, "internal/randx") || strings.HasSuffix(p, "/randx")
}
