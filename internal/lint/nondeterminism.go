package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of their inputs: the replay emulator re-runs them against
// the same trace and expects bit-identical reports, checkpoints, and
// figure data (DESIGN.md §9). Matched by import-path suffix so the
// golden-test fixtures can reproduce the scoping.
var deterministicPkgs = []string{
	"internal/activeness",
	"internal/retention",
	"internal/vfs",
	"internal/sim",
	"internal/trace",
	"internal/synth",
	"internal/timeutil",
	"internal/faults",
	"internal/obs",
	"internal/wal",
	// Durable-file and mmap primitives sit under the snapfile decode
	// path; replay startup must be as replayable as the replay.
	"internal/fsx",
	// The sweep orchestrator replays every figure's comparison through
	// the multiplexed runner; its tables and figure data must be as
	// bit-stable as the replays behind them.
	"internal/experiments",
	// Adapter, fit, and regeneration must give bit-identical datasets
	// for a given seed — the reconstruction-fidelity acceptance and the
	// streamed/materialized snapshot equivalence both depend on it.
	"internal/workload",
}

// nondetFuncs are the time package functions that read the wall
// clock or the process scheduler.
var nondetFuncs = map[string]string{
	"time.Now":   "reads the wall clock",
	"time.Since": "reads the wall clock",
	"time.Until": "reads the wall clock",
	"time.Sleep": "depends on the scheduler",
	"time.Tick":  "reads the wall clock",
	"time.After": "reads the wall clock",
}

// NondeterminismAnalyzer flags wall-clock reads, math/rand, and
// time.Time plumbing inside the deterministic replay packages.
// Timing probes belong behind internal/profiling; simulated time is
// timeutil.Time; randomness is an explicitly seeded randx.Source.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no wall clock, math/rand, or time.Time in deterministic replay packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if !deterministicPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: use an explicitly seeded randx.Source", path, pass.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := pass.Info.Uses[n.Sel]
				if !ok {
					return true
				}
				if fn, ok := obj.(*types.Func); ok {
					if why, hit := nondetFuncs[fn.FullName()]; hit {
						pass.Reportf(n.Pos(), "%s %s in deterministic package %s: route timing through internal/profiling or inject a timeutil.Clock", fn.FullName(), why, pass.Path)
						return false
					}
				}
			}
			if expr, ok := n.(ast.Expr); ok {
				if tv, ok := pass.Info.Types[expr]; ok && tv.IsType() && typeString(tv.Type) == "time.Time" {
					// Only report the outermost type expression
					// (time.Time as a SelectorExpr), not the idents
					// inside it.
					if _, isSel := expr.(*ast.SelectorExpr); isSel {
						pass.Reportf(expr.Pos(), "time.Time in deterministic package %s: use timeutil.Time (Unix seconds) so replays are reproducible", pass.Path)
						return false
					}
				}
			}
			return true
		})
	}
}

func deterministicPackage(path string) bool {
	for _, p := range deterministicPkgs {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}
