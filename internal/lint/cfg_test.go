package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// atomicStmts collects every statement the CFG builder is contracted
// to place verbatim into a block, excluding anything inside nested
// function literals (those get their own CFGs).
func atomicStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.DeclStmt, *ast.ExprStmt, *ast.SendStmt,
			*ast.IncDecStmt, *ast.DeferStmt, *ast.GoStmt, *ast.ReturnStmt,
			*ast.BranchStmt, *ast.EmptyStmt, *ast.RangeStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	return out
}

// checkPartition asserts the CFG partition property for one body:
// every atomic statement appears in exactly one block (counting
// multiplicity), and return/panic statements terminate their block
// with the synthetic Exit as only successor.
func checkPartition(t *testing.T, name string, body *ast.BlockStmt) {
	t.Helper()
	cfg := NewCFG(body, func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	})

	placed := make(map[ast.Node]int)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(ast.Stmt); ok {
				placed[n]++
			}
		}
	}
	for _, s := range atomicStmts(body) {
		switch placed[s] {
		case 1:
		case 0:
			t.Errorf("%s: statement %T at %d missing from every block", name, s, s.Pos())
		default:
			t.Errorf("%s: statement %T at %d appears in %d blocks", name, s, s.Pos(), placed[s])
		}
		delete(placed, s)
	}

	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			terminator := false
			switch n := n.(type) {
			case *ast.ReturnStmt:
				terminator = true
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						terminator = true
					}
				}
			}
			if !terminator {
				continue
			}
			if i != len(b.Nodes)-1 {
				t.Errorf("%s: block %d: terminator %T not last in block", name, b.Index, n)
			}
			if len(b.Succs) != 1 || b.Succs[0] != cfg.Exit {
				t.Errorf("%s: block %d: terminator block has succs %d (want exactly Exit)", name, b.Index, len(b.Succs))
			}
		}
	}
}

// cfgCorpus is the control-flow zoo: every construct the builder
// claims to model, including the pathological combinations.
var cfgCorpus = []string{
	`func a() { x := 1; _ = x }`,
	`func b(c bool) int { if c { return 1 }; return 0 }`,
	`func c(c bool) int {
		if x := 1; c {
			return x
		} else if !c {
			return -x
		} else {
			panic("unreachable")
		}
	}`,
	`func d(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			if i == 3 { continue }
			if i == 7 { break }
			s += i
		}
		return s
	}`,
	`func e(xs []int) int {
		s := 0
		for _, x := range xs { s += x }
		for range xs { s++ }
		return s
	}`,
	`func f(n int) string {
		switch {
		case n < 0:
			return "neg"
		case n == 0:
			fallthrough
		case n == 1:
			return "small"
		}
		switch n {
		case 2:
		default:
			n++
		}
		return "big"
	}`,
	`func g(v any) int {
		switch x := v.(type) {
		case int:
			return x
		case string:
			return len(x)
		}
		return 0
	}`,
	`func h(ch chan int, done chan struct{}) int {
		select {
		case v := <-ch:
			return v
		case <-done:
			break
		default:
		}
		return -1
	}`,
	`func i(n int) int {
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j > i { continue outer }
				if i*j > 100 { break outer }
			}
		}
		return n
	}`,
	`func j(n int) int {
	loop:
		if n > 0 {
			n--
			goto loop
		}
		return n
	}`,
	`func k() int {
		defer println("bye")
		go println("hi")
		return 1
		println("unreachable")
		return 2
	}`,
	`func l(c bool) {
		if c {
			panic("boom")
		}
		for {
			if !c { break }
		}
	}`,
	`func m(ch chan int) {
		ch <- 1
		x := <-ch
		x++
		_ = func() int { return <-ch }
	}`,
	`func n(xs map[string]int) {
	rangeLoop:
		for k, v := range xs {
			switch {
			case v == 0:
				continue rangeLoop
			case v < 0:
				break rangeLoop
			}
			_ = k
		}
	}`,
	`func o() { select {} }`,
	`func p(c bool) int {
		var x int
		switch {
		case c:
			x = 1
			fallthrough
		default:
			x++
		}
		return x
	}`,
}

// TestCFGPartition pins the builder's core contract over the corpus:
// every atomic statement lands in exactly one block and terminators
// end their blocks at Exit.
func TestCFGPartition(t *testing.T) {
	for i, src := range cfgCorpus {
		file := fmt.Sprintf("package p\n%s\n", src)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, fmt.Sprintf("corpus%d.go", i), file, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPartition(t, fd.Name.Name, fd.Body)
			}
		}
	}
}

// TestCFGEdgesWellFormed asserts structural sanity over the corpus:
// successor lists reference blocks of the same CFG, the entry is
// block 0, and the Exit block is empty and edge-free.
func TestCFGEdgesWellFormed(t *testing.T) {
	for i, src := range cfgCorpus {
		file := fmt.Sprintf("package p\n%s\n", src)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, fmt.Sprintf("corpus%d.go", i), file, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg := NewCFG(fd.Body, nil)
			if cfg.Entry() != cfg.Blocks[0] {
				t.Errorf("%s: entry is not Blocks[0]", fd.Name.Name)
			}
			if len(cfg.Exit.Nodes) != 0 || len(cfg.Exit.Succs) != 0 {
				t.Errorf("%s: exit block not empty/terminal", fd.Name.Name)
			}
			for _, b := range cfg.Blocks {
				for _, s := range b.Succs {
					if s.Index < 0 || s.Index >= len(cfg.Blocks) || cfg.Blocks[s.Index] != s {
						t.Errorf("%s: block %d has foreign successor", fd.Name.Name, b.Index)
					}
				}
			}
		}
	}
}

// TestCFGPartitionRepoWide runs the partition property over every
// function body in the module — the property test at production
// scale. Skipped in -short (it re-parses the whole tree).
func TestCFGPartitionRepoWide(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide CFG sweep parses the entire module")
	}
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	bodies := 0
	for _, pkg := range pkgs {
		funcBodies(pkg.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			name := pkg.Path + ".<lit>"
			if decl != nil {
				name = pkg.Path + "." + decl.Name.Name
			}
			checkPartition(t, name, body)
			bodies++
		})
	}
	if bodies < 100 {
		t.Fatalf("swept only %d function bodies; loader lost the tree", bodies)
	}
}

// TestForwardFixpoint exercises the dataflow engine with a reaching
// "tainted" bit over a diamond + loop: the join must preserve taint
// along either path and the fixpoint must terminate on the back edge.
func TestForwardFixpoint(t *testing.T) {
	src := `package p
func f(c bool, n int) {
	x := 0
	if c {
		taint()
	} else {
		x = 1
	}
	for i := 0; i < n; i++ {
		use(x)
	}
	use(x)
}
func taint()    {}
func use(int) {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	cfg := NewCFG(body, nil)

	isCall := func(n ast.Node, name string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	flow := Flow[bool]{
		Entry:     false,
		Unreached: false,
		Transfer: func(n ast.Node, in bool) bool {
			if isCall(n, "taint") {
				return true
			}
			return in
		},
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
	}
	in := Forward(cfg, flow)
	uses := 0
	FactsAt(cfg, flow, in, func(n ast.Node, tainted bool) {
		if !isCall(n, "use") {
			return
		}
		uses++
		if !tainted {
			t.Errorf("use #%d not tainted: the c-branch taint must survive the join and the loop", uses)
		}
	})
	if uses != 2 {
		t.Fatalf("visited %d use() calls, want 2", uses)
	}
}
