package timeutil

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTrip(t *testing.T) {
	d := Date(2016, time.January, 1)
	if got := d.Go(); got.Year() != 2016 || got.Month() != time.January || got.Day() != 1 {
		t.Fatalf("Date round trip = %v", got)
	}
	if d.DateString() != "2016-01-01" {
		t.Fatalf("DateString = %q", d.DateString())
	}
	if d.MonthString() != "2016-01" {
		t.Fatalf("MonthString = %q", d.MonthString())
	}
}

func TestAddSub(t *testing.T) {
	a := Date(2016, time.March, 1)
	b := a.Add(Days(10))
	if b.Sub(a) != Days(10) {
		t.Fatalf("Sub = %v, want 10d", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
}

func TestStartOfDay(t *testing.T) {
	d := Date(2016, time.June, 15).Add(Hours(13) + 2345)
	if got := d.StartOfDay(); got != Date(2016, time.June, 15) {
		t.Fatalf("StartOfDay = %v", got)
	}
	// Midnight is a fixed point.
	m := Date(2016, time.June, 15)
	if m.StartOfDay() != m {
		t.Fatal("StartOfDay not idempotent at midnight")
	}
}

func TestDayIndexMonotone(t *testing.T) {
	a := Date(2015, time.December, 31)
	b := Date(2016, time.January, 1)
	if b.DayIndex()-a.DayIndex() != 1 {
		t.Fatalf("DayIndex delta = %d", b.DayIndex()-a.DayIndex())
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 7, 0},
		{1, 7, 1},
		{7, 7, 1},
		{8, 7, 2},
		{14, 7, 2},
		{15, 7, 3},
		{-1, 7, 0},
		{-7, 7, -1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestPeriodCount(t *testing.T) {
	base := Date(2016, time.January, 1)
	cases := []struct {
		first, last Time
		p           Duration
		want        int
	}{
		{base, base, Days(7), 1},                 // zero span
		{base, base.Add(Days(1)), Days(7), 1},    // sub-period span
		{base, base.Add(Days(7)), Days(7), 1},    // exact period
		{base, base.Add(Days(8)), Days(7), 2},    // just over
		{base, base.Add(Days(365)), Days(7), 53}, // year of weeks
		{base.Add(Days(3)), base, Days(7), 1},    // inverted span clamps
		{base, base.Add(Days(365)), Days(90), 5}, // quarters
	}
	for i, c := range cases {
		if got := PeriodCount(c.first, c.last, c.p); got != c.want {
			t.Errorf("case %d: PeriodCount = %d, want %d", i, got, c.want)
		}
	}
}

// TestPeriodIndexFigure3 reproduces the worked example of the paper's
// Figure 3: m = 5 periods ending at tc, and activities at tc−5…tc−1
// period offsets receive indices 1…5.
func TestPeriodIndexFigure3(t *testing.T) {
	p := Days(7)
	tc := Date(2016, time.July, 1)
	m := 5
	for back := 1; back <= 5; back++ {
		// An activity in the middle of the period (tc−back·p, tc−(back−1)·p].
		ts := tc.Add(-Duration(back)*p + p/2)
		want := m - back + 1
		if got := PeriodIndex(tc, ts, m, p); got != want {
			t.Errorf("back=%d: PeriodIndex = %d, want %d", back, got, want)
		}
	}
}

func TestPeriodIndexEdges(t *testing.T) {
	p := Days(7)
	tc := Date(2016, time.July, 1)
	m := 4
	if got := PeriodIndex(tc, tc, m, p); got != m {
		t.Errorf("activity at tc: index = %d, want %d (newest period)", got, m)
	}
	// Exactly one period old: boundary belongs to the newest period
	// because ceil(P/P) = 1.
	if got := PeriodIndex(tc, tc.Add(-p), m, p); got != m {
		t.Errorf("activity at tc−P: index = %d, want %d", got, m)
	}
	// Older than the window: index ≤ 0.
	if got := PeriodIndex(tc, tc.Add(-Duration(m+2)*p), m, p); got > 0 {
		t.Errorf("stale activity: index = %d, want ≤ 0", got)
	}
	// Future activity clamps to m+1.
	if got := PeriodIndex(tc, tc.Add(p), m, p); got != m+1 {
		t.Errorf("future activity: index = %d, want %d", got, m+1)
	}
}

// Property: the period index is always within [m−ceil(age/p)+1] and
// monotonically non-decreasing in ts.
func TestPeriodIndexMonotoneProperty(t *testing.T) {
	p := Days(7)
	tc := Date(2016, time.July, 1)
	f := func(off1, off2 uint32) bool {
		a := tc.Add(-Duration(off1 % (400 * uint32(Day))))
		b := tc.Add(-Duration(off2 % (400 * uint32(Day))))
		if a > b {
			a, b = b, a
		}
		m := 30
		ia := PeriodIndex(tc, a, m, p)
		ib := PeriodIndex(tc, b, m, p)
		return ia <= ib && ib <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimClock(t *testing.T) {
	c := NewSimClock(Date(2016, time.January, 1))
	if c.Now() != Date(2016, time.January, 1) {
		t.Fatal("initial time wrong")
	}
	c.Advance(Days(7))
	if c.Now() != Date(2016, time.January, 8) {
		t.Fatalf("after advance: %v", c.Now())
	}
	c.Set(Date(2017, time.May, 2))
	if c.Now() != Date(2017, time.May, 2) {
		t.Fatalf("after set: %v", c.Now())
	}
	var _ Clock = c
	var _ Clock = RealClock{}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Days(90), "90d"},
		{Hours(5), "5h"},
		{42, "42s"},
		{0, "0s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestStartOfDayPreEpoch(t *testing.T) {
	// Pre-epoch times floor toward the earlier midnight.
	pre := Time(-1)
	if got := pre.StartOfDay(); got != Time(-int64(Day)) {
		t.Fatalf("StartOfDay(-1) = %d, want %d", got, -int64(Day))
	}
	exact := Time(-2 * int64(Day))
	if exact.StartOfDay() != exact {
		t.Fatal("pre-epoch midnight not a fixed point")
	}
}

func TestTimeString(t *testing.T) {
	d := Date(2016, time.March, 4).Add(Hours(5))
	if got := d.String(); got != "2016-03-04 05:00:00" {
		t.Fatalf("String = %q", got)
	}
}

func TestRealClockSane(t *testing.T) {
	now := RealClock{}.Now()
	// Somewhere between 2020 and 2100.
	if now < Date(2020, time.January, 1) || now > Date(2100, time.January, 1) {
		t.Fatalf("RealClock.Now = %v", now)
	}
}

func TestPeriodCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PeriodCount with zero period did not panic")
		}
	}()
	PeriodCount(0, 1, 0)
}

func TestPeriodIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PeriodIndex with zero period did not panic")
		}
	}()
	PeriodIndex(0, 0, 1, 0)
}
