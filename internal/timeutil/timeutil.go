// Package timeutil provides the timestamp and period arithmetic shared
// by the activeness model, the retention policies, and the replay
// emulator.
//
// All timestamps are Unix seconds held in the Time type. The package
// deliberately avoids time.Time in hot paths: the emulator replays
// millions of events and the activeness model buckets them into
// periods, both of which are pure integer arithmetic.
package timeutil

import (
	"fmt"
	"time"
)

// Time is a Unix timestamp in seconds. The zero value is the epoch.
type Time int64

// Duration is a span of time in seconds.
type Duration int64

// Common durations, in seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 86400
	Week   Duration = 7 * Day
)

// Days returns a Duration of n days.
func Days(n int) Duration { return Duration(n) * Day }

// Hours returns a Duration of n hours.
func Hours(n int) Duration { return Duration(n) * Hour }

// FromGo converts a time.Time to a Time.
//
//lint:allow nondeterminism FromGo is the conversion boundary from Go time
func FromGo(t time.Time) Time { return Time(t.Unix()) }

// Date builds a Time from a UTC calendar date.
func Date(year int, month time.Month, day int) Time {
	return FromGo(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Go converts t to a time.Time in UTC.
//
//lint:allow nondeterminism Go is the conversion boundary to Go time
func (t Time) Go() time.Time { return time.Unix(int64(t), 0).UTC() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t − u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// DayIndex returns the number of whole days since the epoch. Floor
// division keeps it consistent with StartOfDay (and vfs's atime-day
// buckets) for pre-epoch times: DayIndex(-1s) is -1, not 0.
func (t Time) DayIndex() int { return int(int64(t.StartOfDay()) / int64(Day)) }

// StartOfDay truncates t to midnight UTC.
func (t Time) StartOfDay() Time {
	if t >= 0 {
		return t - t%Time(Day)
	}
	// Floor division for pre-epoch times.
	r := t % Time(Day)
	if r == 0 {
		return t
	}
	return t - r - Time(Day)
}

// String formats t as a UTC date-time.
func (t Time) String() string { return t.Go().Format("2006-01-02 15:04:05") }

// DateString formats t as a UTC date.
func (t Time) DateString() string { return t.Go().Format("2006-01-02") }

// MonthString formats t as YYYY-MM.
func (t Time) MonthString() string { return t.Go().Format("2006-01") }

// String formats a duration in a compact human form (e.g. "90d",
// "36h", "45s").
func (d Duration) String() string {
	switch {
	case d%Day == 0 && d != 0:
		return fmt.Sprintf("%dd", d/Day)
	case d%Hour == 0 && d != 0:
		return fmt.Sprintf("%dh", d/Hour)
	default:
		return fmt.Sprintf("%ds", d)
	}
}

// CeilDiv returns ceil(a/b) for b > 0. It is the ⌈·⌉ of the paper's
// Eq. (1) and Eq. (4).
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("timeutil: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		// Floor toward zero is already the ceiling for a ≤ 0 when the
		// quotient is non-positive; the activeness model never asks
		// for negative spans, but be exact anyway.
		return -((-a) / b)
	}
	return (a + b - 1) / b
}

// PeriodCount implements Eq. (1): the number of periods of length p
// spanned by activities from first to last. A zero (or negative) span
// still occupies one period.
func PeriodCount(first, last Time, p Duration) int {
	if p <= 0 {
		panic("timeutil: PeriodCount with non-positive period")
	}
	span := int64(last - first)
	if span <= 0 {
		return 1
	}
	return int(CeilDiv(span, int64(p)))
}

// PeriodIndex implements Eq. (4): the 1-based index, within a window
// of m periods ending at tc, of the period containing ts. The most
// recent period has index m; an activity exactly at tc belongs to it.
// Indices ≤ 0 mean the activity predates the window and must be
// ignored; indices > m (ts in the future of tc) are clamped to m+1 so
// callers can detect them.
func PeriodIndex(tc, ts Time, m int, p Duration) int {
	if p <= 0 {
		panic("timeutil: PeriodIndex with non-positive period")
	}
	age := int64(tc - ts)
	if age < 0 {
		return m + 1
	}
	q := CeilDiv(age, int64(p))
	if q == 0 {
		q = 1 // ts == tc lands in the newest period
	}
	e := m - int(q) + 1
	return e
}

// Clock yields the current simulated or real time.
type Clock interface {
	Now() Time
}

// SimClock is a manually advanced clock for simulations. The zero
// value starts at the epoch.
type SimClock struct {
	t Time
}

// NewSimClock returns a SimClock starting at t.
func NewSimClock(t Time) *SimClock { return &SimClock{t: t} }

// Now returns the current simulated time.
func (c *SimClock) Now() Time { return c.t }

// Set jumps the clock to t.
func (c *SimClock) Set(t Time) { c.t = t }

// Advance moves the clock forward by d and returns the new time.
func (c *SimClock) Advance(d Duration) Time {
	c.t = c.t.Add(d)
	return c.t
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now returns the current wall-clock time.
//
//lint:allow nondeterminism RealClock is the explicit wall-clock escape hatch
func (RealClock) Now() Time { return FromGo(time.Now()) }
