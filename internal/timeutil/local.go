package timeutil

// Local-timestamp normalization. Real facility traces (the IN2P3 2024
// workload dataset, for one) record job times as local wall-clock
// strings with no offset — including days where DST makes the wall
// clock skip an hour or replay one. Everything downstream of ingestion
// buckets by UTC Unix seconds (StartOfDay, DayIndex, the vfs atime-day
// index), so local times must be normalized exactly once, at the parse
// edge, and never leak past it. This file is that edge: it converts a
// (wall-clock string, IANA zone) pair to a Time and nothing else in
// the repo touches zones.
//
// DST corner cases inherit Go's time.Date normalization, pinned by the
// regression tests in local_test.go:
//   - a nonexistent wall time (spring-forward gap) is shifted forward
//     by the width of the gap (02:30 in a 02:00→03:00 jump lands at
//     03:30 post-transition — later on the Unix line than a record
//     stamped 03:00, so wall order is not Unix order around the gap);
//   - an ambiguous wall time (fall-back hour) maps to the
//     post-transition (standard-offset) occurrence.
// Both choices are deterministic functions of the tzdata shipped with
// the binary, which is all replay determinism needs.

import (
	"fmt"
	"strings"
	"time"
)

// localLayouts are the wall-clock shapes accepted by ParseLocal, in
// the order tried. All are offset-free: a timestamp that carries its
// own offset does not need a zone and should be parsed upstream.
var localLayouts = []string{
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
}

// Location resolves an IANA zone name (e.g. "Europe/Paris"). It is a
// thin wrapper over the Go runtime's tzdata lookup so callers outside
// this package never import time directly for zone handling.
//
//lint:allow nondeterminism Location is the zone-database edge; lookups are pure given tzdata
func Location(name string) (*time.Location, error) {
	loc, err := time.LoadLocation(name)
	if err != nil {
		return nil, fmt.Errorf("timeutil: unknown zone %q: %w", name, err)
	}
	return loc, nil
}

// Zone is a resolved IANA zone callers can hold without importing
// time themselves — packages inside vetadr's determinism scope parse
// local timestamps through it.
type Zone struct {
	name string
	loc  *time.Location
}

// LoadZone resolves an IANA zone name into a Zone.
func LoadZone(name string) (*Zone, error) {
	loc, err := Location(name)
	if err != nil {
		return nil, err
	}
	return &Zone{name: name, loc: loc}, nil
}

// Name returns the zone's IANA name.
func (z *Zone) Name() string { return z.name }

// Parse parses an offset-free wall-clock timestamp in the zone. A nil
// receiver parses as UTC.
func (z *Zone) Parse(s string) (Time, error) {
	if z == nil {
		return ParseLocal(s, nil)
	}
	return ParseLocal(s, z.loc)
}

// ParseLocal parses an offset-free local wall-clock timestamp in loc
// and normalizes it to UTC Unix seconds. Accepted layouts are
// "2006-01-02 15:04:05", the T-separated variant, minute precision,
// and a bare date (midnight). A nil loc means UTC.
//
//lint:allow nondeterminism ParseLocal is the local-time conversion boundary
func ParseLocal(s string, loc *time.Location) (Time, error) {
	if loc == nil {
		loc = time.UTC
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("timeutil: empty timestamp")
	}
	for _, layout := range localLayouts {
		if len(s) != len(layout) {
			continue
		}
		t, err := time.ParseInLocation(layout, s, loc)
		if err == nil {
			return FromGo(t), nil
		}
	}
	return 0, fmt.Errorf("timeutil: unparseable local timestamp %q", s)
}
