package timeutil

import (
	"testing"
	"time"
)

func mustLoc(t *testing.T, name string) *time.Location {
	t.Helper()
	loc, err := Location(name)
	if err != nil {
		t.Fatalf("Location(%q): %v", name, err)
	}
	return loc
}

// TestParseLocalNormalizesToUTC pins the parse-edge contract: local
// wall clocks in, UTC Unix seconds out, with the zone's offset (winter
// vs summer) applied.
func TestParseLocalNormalizesToUTC(t *testing.T) {
	paris := mustLoc(t, "Europe/Paris")
	cases := []struct {
		in   string
		want Time
	}{
		// Winter: CET = UTC+1, so 00:30 local is 23:30 the previous UTC day.
		{"2024-01-15 00:30:00", 1705275000},
		// Summer: CEST = UTC+2.
		{"2024-07-15 00:30:00", 1720996200},
		// Alternate layouts.
		{"2024-01-15T00:30:00", 1705275000},
		{"2024-01-15 00:30", 1705275000},
		{"2024-01-15", 1705273200}, // bare date → local midnight = 23:00Z prior day
	}
	for _, c := range cases {
		got, err := ParseLocal(c.in, paris)
		if err != nil {
			t.Fatalf("ParseLocal(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseLocal(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestParseLocalDayBoundary is the day-bucketing regression: a record
// stamped shortly after local midnight belongs to the *previous* UTC
// day bucket, and StartOfDay/DayIndex must agree with each other about
// which one.
func TestParseLocalDayBoundary(t *testing.T) {
	paris := mustLoc(t, "Europe/Paris")
	ts, err := ParseLocal("2024-01-15 00:30:00", paris)
	if err != nil {
		t.Fatal(err)
	}
	wantDay := Date(2024, time.January, 14)
	if got := ts.StartOfDay(); got != wantDay {
		t.Fatalf("StartOfDay = %v, want %v", got, wantDay)
	}
	if got, want := ts.DayIndex(), wantDay.DayIndex(); got != want {
		t.Fatalf("DayIndex = %d, want %d", got, want)
	}
	// A record 30 minutes earlier (23:00 local, 22:00Z) stays in the
	// same UTC day; one at 01:30 local (00:30Z) moves to the next.
	before, _ := ParseLocal("2024-01-14 23:00:00", paris)
	after, _ := ParseLocal("2024-01-15 01:30:00", paris)
	if before.DayIndex() != wantDay.DayIndex() {
		t.Fatalf("23:00 local fell out of UTC day %v", wantDay)
	}
	if after.DayIndex() != wantDay.DayIndex()+1 {
		t.Fatalf("01:30 local did not advance a UTC day")
	}
}

// TestParseLocalDST pins Go's (deterministic-given-tzdata) handling of
// the two DST corners, so an upstream behavior change breaks loudly
// here rather than silently reshuffling day buckets.
func TestParseLocalDST(t *testing.T) {
	paris := mustLoc(t, "Europe/Paris")
	cases := []struct {
		name string
		in   string
		want Time
	}{
		{"before spring gap", "2024-03-31 01:59:59", 1711846799}, // 00:59:59Z
		{"inside spring gap", "2024-03-31 02:30:00", 1711848600}, // normalized to 03:30 CEST = 01:30Z
		{"after spring gap", "2024-03-31 03:00:00", 1711846800},  // 01:00Z
		{"ambiguous fall-back", "2024-10-27 02:30:00", 1729992600}, // post-transition CET = 01:30Z
		{"after fall-back", "2024-10-27 03:30:00", 1729996200},
	}
	for _, c := range cases {
		got, err := ParseLocal(c.in, paris)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: ParseLocal(%q) = %d, want %d", c.name, c.in, got, c.want)
		}
	}
	// The spring-gap normalization lands *after* the 03:00 wall clock on
	// the Unix line: ingestion must re-sort, not trust wall order.
	gap, _ := ParseLocal("2024-03-31 02:30:00", paris)
	post, _ := ParseLocal("2024-03-31 03:00:00", paris)
	if !post.Before(gap) {
		t.Fatalf("expected gap-normalized time (%d) to land after 03:00 (%d)", gap, post)
	}
	// Every timestamp on a DST day still buckets into exactly the UTC
	// day its normalized instant falls in.
	for _, ts := range []Time{gap, post} {
		if ts.StartOfDay() != Date(2024, time.March, 31) {
			t.Fatalf("DST-day timestamp %d bucketed to %v", ts, ts.StartOfDay())
		}
	}
}

// TestParseLocalRejects covers the malformed shapes the lenient
// ingestion edge must quarantine rather than crash on.
func TestParseLocalRejects(t *testing.T) {
	paris := mustLoc(t, "Europe/Paris")
	for _, s := range []string{
		"", "   ", "garbage", "2024-13-40 99:99:99", "15/01/2024 00:30:00",
		"2024-01-15 00:30:00 CET", "1705275000",
	} {
		if _, err := ParseLocal(s, paris); err == nil {
			t.Errorf("ParseLocal(%q) accepted", s)
		}
	}
}

// TestParseLocalNilLocation means UTC.
func TestParseLocalNilLocation(t *testing.T) {
	got, err := ParseLocal("2024-01-15 00:30:00", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := Date(2024, time.January, 15).Add(30 * Minute); got != want {
		t.Fatalf("ParseLocal nil loc = %d, want %d", got, want)
	}
}

// TestDayIndexFloorsPreEpoch is the regression for the DayIndex /
// StartOfDay divergence: truncating division put -1s in day 0 while
// StartOfDay (and the vfs atime-day buckets) floored it into day -1.
func TestDayIndexFloorsPreEpoch(t *testing.T) {
	cases := []struct {
		t    Time
		want int
	}{
		{0, 0},
		{Time(Day) - 1, 0},
		{Time(Day), 1},
		{-1, -1},
		{-Time(Day), -1},
		{-Time(Day) - 1, -2},
	}
	for _, c := range cases {
		if got := c.t.DayIndex(); got != c.want {
			t.Errorf("DayIndex(%d) = %d, want %d", c.t, got, c.want)
		}
		// Consistency with StartOfDay, the invariant that actually matters.
		if got := int(int64(c.t.StartOfDay()) / int64(Day)); got != c.t.DayIndex() {
			t.Errorf("DayIndex(%d)=%d disagrees with StartOfDay-derived %d", c.t, c.t.DayIndex(), got)
		}
	}
}
