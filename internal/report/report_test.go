package report

import (
	"strings"
	"testing"

	"activedr/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta-long-name", 42)
	out := tbl.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "beta-long-name  42") {
		t.Errorf("row misaligned:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines padded to the same width structure: the separator
	// row has dashes as wide as the widest cell.
	if !strings.Contains(out, strings.Repeat("-", len("beta-long-name"))) {
		t.Error("separator not sized to widest cell")
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("x")
	out := tbl.String()
	if strings.Contains(out, "== ") {
		t.Error("empty title rendered")
	}
	if len(tbl.Rows[0]) != 3 {
		t.Fatal("row not padded")
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "Miss ranges", []string{"1%-5%", "5%-10%"},
		map[string][]int{"FLT": {10, 4}, "ActiveDR": {8, 2}},
		[]string{"FLT", "ActiveDR"})
	out := b.String()
	for _, want := range []string{"== Miss ranges ==", "-- FLT --", "-- ActiveDR --", "1%-5%", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// FLT's 10 is the max: full 40-char bar.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Error("max bar not full width")
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "Daily", "date", []string{"flt", "adr"}, []SeriesRow{
		{X: "2016-01-01", Y: []float64{1, 2}},
		{X: "2016-01-02", Y: []float64{3.5, 0.25}},
	})
	out := b.String()
	if !strings.Contains(out, "2016-01-02") || !strings.Contains(out, "3.5") {
		t.Fatalf("series rows missing:\n%s", out)
	}
}

func TestBoxRow(t *testing.T) {
	row := BoxRow("Both Active", stats.Box{Min: 0.1, Q1: 0.2, Median: 0.3, Q3: 0.4, Max: 0.5, Mean: 0.37})
	for _, want := range []string{"Both Active", "med=  30.00%", "mean=  37.00%"} {
		if !strings.Contains(row, want) {
			t.Errorf("missing %q in %q", want, row)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{5 << 20, "5.000MiB"},
		{3 << 30, "3.000GiB"},
		{1 << 40, "1.000TiB"},
		{1 << 50, "1.000PiB"},
		{-(3 << 40), "-3.000TiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.375) != "+37.50%" || Percent(-0.4048) != "-40.48%" {
		t.Fatalf("Percent wrong: %q %q", Percent(0.375), Percent(-0.4048))
	}
}
