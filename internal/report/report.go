// Package report renders experiment output as aligned text tables,
// labelled series, and ASCII histograms — the textual equivalents of
// the paper's figures that the benchmark harness and cmd/report emit.
package report

import (
	"fmt"
	"io"
	"strings"

	"activedr/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row built from format/value pairs: each cell is
// rendered with fmt.Sprintf(formats[i], values[i]).
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprint(v)
	}
	t.AddRow(cells...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				io.WriteString(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Histogram renders labelled counts with proportional bars, the text
// analogue of the day-count histograms in Figures 1 and 6.
func Histogram(w io.Writer, title string, labels []string, series map[string][]int, order []string) {
	fmt.Fprintf(w, "== %s ==\n", title)
	max := 1
	for _, counts := range series {
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, name := range order {
		counts := series[name]
		fmt.Fprintf(w, "-- %s --\n", name)
		for i, l := range labels {
			n := 0
			if i < len(counts) {
				n = counts[i]
			}
			bar := strings.Repeat("#", n*40/max)
			fmt.Fprintf(w, "%-*s %4d %s\n", labelW, l, n, bar)
		}
	}
}

// Series renders an (x, y...) line series as columns, the text
// analogue of the time-series figures.
func Series(w io.Writer, title string, xLabel string, names []string, rows []SeriesRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-12s", xLabel)
	for _, n := range names {
		fmt.Fprintf(w, "  %12s", n)
	}
	io.WriteString(w, "\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.X)
		for _, v := range r.Y {
			fmt.Fprintf(w, "  %12.4g", v)
		}
		io.WriteString(w, "\n")
	}
}

// SeriesRow is one x position with one y value per series.
type SeriesRow struct {
	X string
	Y []float64
}

// BoxRow renders one Figure-8-style box-statistics line.
func BoxRow(name string, b stats.Box) string {
	return fmt.Sprintf("%-24s min=%7.2f%% q1=%7.2f%% med=%7.2f%% q3=%7.2f%% max=%7.2f%% mean=%7.2f%%",
		name, 100*b.Min, 100*b.Q1, 100*b.Median, 100*b.Q3, 100*b.Max, 100*b.Mean)
}

// Bytes formats a byte count with a binary-power unit, matching the
// PB/TB axis labels of Figures 9 and 10.
func Bytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1<<50:
		return fmt.Sprintf("%.3fPiB", float64(n)/float64(int64(1)<<50))
	case abs >= 1<<40:
		return fmt.Sprintf("%.3fTiB", float64(n)/float64(int64(1)<<40))
	case abs >= 1<<30:
		return fmt.Sprintf("%.3fGiB", float64(n)/float64(int64(1)<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.3fMiB", float64(n)/float64(int64(1)<<20))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Percent formats a ratio as a signed percentage.
func Percent(x float64) string { return fmt.Sprintf("%+.2f%%", 100*x) }
