// Gaming the purge: a user "touches" parked files every month to
// renew their access times without doing any real work (§1 of the
// paper, citing Monti et al.). FLT is fooled forever; ActiveDR sees a
// user with no operations or outcomes and reclaims the space as soon
// as the purge target demands it.
//
//	go run ./examples/gaming
package main

import (
	"fmt"
	"log"
	"time"

	"activedr"
)

func main() {
	log.SetFlags(0)

	start := activedr.Date(2016, time.January, 1)
	fsys := activedr.NewFS()
	// The gamer parks 10 files; a busy colleague owns one active file.
	var gamerFiles []string
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/lustre/atlas/gamer/parked%02d.dat", i)
		gamerFiles = append(gamerFiles, p)
		if err := fsys.Insert(p, activedr.FileMeta{User: 0, Size: 1 << 40, ATime: start}); err != nil {
			log.Fatal(err)
		}
	}
	busy := "/lustre/atlas/busy/run.dat"
	if err := fsys.Insert(busy, activedr.FileMeta{User: 1, Size: 1 << 40, ATime: start}); err != nil {
		log.Fatal(err)
	}

	flt := &activedr.FLT{Lifetime: activedr.Days(90)}
	adr, err := activedr.NewActiveDR(activedr.RetentionConfig{
		Lifetime:          activedr.Days(90),
		Capacity:          fsys.TotalBytes(),
		TargetUtilization: 0.5, // the system needs half the space back
	})
	if err != nil {
		log.Fatal(err)
	}
	adrFS := fsys.Clone()

	// Ranks: the gamer has zero operations and outcomes; the busy
	// user's rank reflects rising activity.
	ranks := []activedr.Rank{
		{Op: 0, Oc: 0, HasOp: true, HasOc: true},
		{Op: 2.5, Oc: 1.2, HasOp: true, HasOc: true},
	}

	// Simulate 12 monthly cycles: at each month's start the gamer
	// touches every parked file; the purge runs mid-month, when the
	// touched files are two weeks idle — far inside the FLT lifetime,
	// but fair game for ActiveDR once the target demands space.
	tc := start
	for month := 1; month <= 12; month++ {
		tc = tc.Add(activedr.Days(30))
		for _, p := range gamerFiles {
			fsys.Touch(p, tc)  // FLT world: the trick works
			adrFS.Touch(p, tc) // ActiveDR world: the touch is futile
		}
		fsys.Touch(busy, tc)
		adrFS.Touch(busy, tc)
		purgeAt := tc.Add(activedr.Days(15))
		flt.Purge(fsys, ranks, purgeAt)
		adr.Purge(adrFS, ranks, purgeAt)
	}

	count := func(fs *activedr.FS, paths []string) int {
		n := 0
		for _, p := range paths {
			if fs.Contains(p) {
				n++
			}
		}
		return n
	}
	fmt.Printf("after one year of monthly touch-gaming (10 TiB parked):\n")
	fmt.Printf("  FLT      : gamer keeps %2d/10 parked files — the trick works\n", count(fsys, gamerFiles))
	fmt.Printf("  ActiveDR : gamer keeps %2d/10 parked files — activeness, not atime, decides\n", count(adrFS, gamerFiles))
	fmt.Printf("  the busy user's file survives under both: FLT=%v ActiveDR=%v\n",
		fsys.Contains(busy), adrFS.Contains(busy))
}
