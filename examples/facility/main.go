// Facility sweep: run the fixed-lifetime policies of Table 1 (NCAR
// 120d, OLCF 90d, TACC 30d, NERSC 12wk) and ActiveDR on the same
// synthetic system and compare how many misses each would inflict —
// the trade-off a site administrator faces when picking a lifetime.
//
//	go run ./examples/facility
package main

import (
	"fmt"
	"log"

	"activedr"
)

func main() {
	log.SetFlags(0)
	ds, err := activedr.Generate(activedr.SynthConfig{Seed: 7, Users: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-14s %10s %12s %14s\n", "Site", "Policy", "Misses", "Miss ratio", "Final usage TB")
	for _, f := range activedr.Facilities() {
		em, err := activedr.NewEmulator(ds, activedr.SimConfig{Lifetime: f.Lifetime})
		if err != nil {
			log.Fatal(err)
		}
		res, err := em.Run(em.NewFLT())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-14s %10d %11.2f%% %14.1f\n",
			f.Name, res.Policy, res.TotalMisses,
			100*float64(res.TotalMisses)/float64(res.TotalAccesses),
			float64(res.Final.TotalBytes())/1e12)
	}
	// ActiveDR with the OLCF lifetime for contrast.
	em, err := activedr.NewEmulator(ds, activedr.SimConfig{
		Lifetime:          activedr.Days(90),
		TargetUtilization: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	adr, err := em.NewActiveDR()
	if err != nil {
		log.Fatal(err)
	}
	res, err := em.Run(adr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-14s %10d %11.2f%% %14.1f\n",
		"(OLCF)", res.Policy, res.TotalMisses,
		100*float64(res.TotalMisses)/float64(res.TotalAccesses),
		float64(res.Final.TotalBytes())/1e12)
}
