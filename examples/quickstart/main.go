// Quickstart: generate a synthetic HPC trace dataset, replay one year
// of file accesses under the fixed-lifetime baseline and under
// ActiveDR, and compare the file misses users would have suffered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"activedr"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small OLCF-like system: 500 users, two years of
	// job history, a reference metadata snapshot, and one replay year
	// of file accesses.
	ds, err := activedr.Generate(activedr.SynthConfig{Seed: 42, Users: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users, %d jobs, %d file accesses, %d publications\n",
		len(ds.Users), len(ds.Jobs), len(ds.Accesses), len(ds.Publications))
	fmt.Printf("snapshot: %d files, %.1f TB\n",
		len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e12)

	// 2. Replay the year under both policies: 90-day initial lifetime,
	// weekly purge trigger, 50% purge target — the paper's setup.
	em, err := activedr.NewEmulator(ds, activedr.SimConfig{
		Lifetime:          activedr.Days(90),
		TargetUtilization: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := em.RunComparison()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare.
	fmt.Printf("\n%-14s %8d file misses\n", cmp.FLT.Policy, cmp.FLT.TotalMisses)
	fmt.Printf("%-14s %8d file misses\n", cmp.ActiveDR.Policy, cmp.ActiveDR.TotalMisses)
	fmt.Printf("ActiveDR reduced file misses by %.1f%%\n\n", 100*cmp.MissReduction())

	groups := []activedr.Group{
		activedr.BothActive, activedr.OperationActiveOnly,
		activedr.OutcomeActiveOnly, activedr.BothInactive,
	}
	for _, g := range groups {
		fmt.Printf("  %-22s FLT=%6d  ActiveDR=%6d\n",
			g, cmp.FLT.MissesByGroup[g], cmp.ActiveDR.MissesByGroup[g])
	}
}
