// Purge exemption: the administrator reserves a directory subtree and
// a single file, then runs an aggressive ActiveDR pass. Reserved
// paths survive even though their owner is fully inactive — the
// "contract between users and the system administrator" of §3.4.
//
//	go run ./examples/exemption
package main

import (
	"fmt"
	"log"
	"time"

	"activedr"
)

func main() {
	log.SetFlags(0)
	tc := activedr.Date(2016, time.August, 23)

	// A tiny hand-built file system: one inactive user with parked
	// data, part of it covered by a reservation list.
	fsys := activedr.NewFS()
	old := tc.Add(-activedr.Days(300))
	files := []string{
		"/lustre/atlas/u1/campaign/model.ckpt",
		"/lustre/atlas/u1/campaign/inputs/mesh.h5",
		"/lustre/atlas/u1/scratch/tmp001.dat",
		"/lustre/atlas/u1/scratch/tmp002.dat",
		"/lustre/atlas/u1/results/final.h5",
	}
	for _, p := range files {
		if err := fsys.Insert(p, activedr.FileMeta{User: 0, Size: 10 << 30, ATime: old}); err != nil {
			log.Fatal(err)
		}
	}

	// The reservation list: the whole campaign directory plus one
	// result file.
	reserved := activedr.NewReservedSet()
	reserved.Add("/lustre/atlas/u1/campaign")
	reserved.Add("/lustre/atlas/u1/results/final.h5")

	policy, err := activedr.NewActiveDR(activedr.RetentionConfig{
		Lifetime: activedr.Days(90),
		Reserved: reserved,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The owner is both-inactive: rank 0 on both classes.
	ranks := []activedr.Rank{{Op: 0, Oc: 0, HasOp: true, HasOc: true}}
	rep := policy.Purge(fsys, ranks, tc)

	fmt.Printf("purged %d files, skipped %d reserved files\n\n", rep.PurgedFiles, rep.SkippedExempt)
	for _, p := range files {
		state := "PURGED"
		if fsys.Contains(p) {
			state = "kept  "
		}
		mark := ""
		if reserved.Covers(p) {
			mark = "  (reserved)"
		}
		fmt.Printf("  %s %s%s\n", state, p, mark)
	}
}
