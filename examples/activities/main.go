// Activity-type configuration: the paper's Table 2 lets an
// administrator pick any trackable activities as activeness sources.
// This example evaluates the same population twice — once with jobs
// and publications only (the paper's reference configuration), once
// with shell logins and data transfers added as extra operation types
// — and shows how the activeness matrix shifts.
//
//	go run ./examples/activities
package main

import (
	"fmt"
	"log"
	"time"

	"activedr"
)

func main() {
	log.SetFlags(0)
	ds, err := activedr.Generate(activedr.SynthConfig{Seed: 13, Users: 600})
	if err != nil {
		log.Fatal(err)
	}
	tc := activedr.Date(2016, time.August, 23)

	evaluate := func(extra bool) activedr.Matrix {
		ev := activedr.NewEvaluator(activedr.Days(90))
		jobs := ev.AddType("job-submission", activedr.Operation)
		pubs := ev.AddType("publication", activedr.Outcome)
		ev.RecordJobs(jobs, ds.Jobs)
		ev.RecordPublications(pubs, ds.Publications)
		if extra {
			logins := ev.AddType("shell-login", activedr.Operation)
			transfers := ev.AddType("data-transfer", activedr.Operation)
			ev.RecordLogins(logins, ds.Logins)
			ev.RecordTransfers(transfers, ds.Transfers)
		}
		ranks := ev.EvaluateAll(len(ds.Users), tc)
		var m activedr.Matrix
		for _, r := range ranks {
			m.Counts[r.Group()]++
			m.Total++
		}
		return m
	}

	base := evaluate(false)
	extra := evaluate(true)
	fmt.Printf("dataset: %d logins, %d transfers available beyond %d jobs / %d publications\n\n",
		len(ds.Logins), len(ds.Transfers), len(ds.Jobs), len(ds.Publications))
	fmt.Printf("%-24s %18s %24s\n", "Group", "jobs+pubs only", "+logins +transfers")
	groups := []activedr.Group{
		activedr.BothActive, activedr.OperationActiveOnly,
		activedr.OutcomeActiveOnly, activedr.BothInactive,
	}
	for _, g := range groups {
		fmt.Printf("%-24s %12d users %18d users\n", g, base.Counts[g], extra.Counts[g])
	}
	fmt.Println("\nEvery operation type multiplies into Φ_op (Eq. 6): demanding")
	fmt.Println("steady logins *and* transfers *and* jobs is stricter, so adding")
	fmt.Println("types typically shrinks the operation-active cohort — exactly the")
	fmt.Println("knob §5 of the paper leaves to the administrator.")
}
