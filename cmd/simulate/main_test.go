package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activedr/internal/obs"
	"activedr/internal/synth"
	"activedr/internal/trace"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = accepted
	}{
		{"defaults", nil, ""},
		{"full observability", []string{"-metrics-out", "m.json", "-events-out", "e.jsonl", "-audit-sample", "0.5"}, ""},
		{"checkpointed resume", []string{"-checkpoint-dir", "ck", "-checkpoint-every", "4", "-resume"}, ""},
		{"delta checkpoints", []string{"-checkpoint-dir", "ck", "-checkpoint-full-every", "4"}, ""},
		{"boundary sample values", []string{"-events-out", "e", "-audit-sample", "1"}, ""},
		{"target at one", []string{"-target", "1"}, ""},
		{"multiplex", []string{"-multiplex"}, ""},
		{"multiplex with checkpoints", []string{"-multiplex", "-checkpoint-dir", "ck"}, ""},

		{"zero lifetime", []string{"-lifetime", "0"}, "-lifetime must be >= 1"},
		{"negative lifetime", []string{"-lifetime", "-90"}, "-lifetime must be >= 1"},
		{"zero interval", []string{"-interval", "0"}, "-interval must be >= 1"},
		{"negative interval", []string{"-interval", "-7"}, "-interval must be >= 1"},
		{"zero target", []string{"-target", "0"}, "-target must be in (0,1]"},
		{"target above one", []string{"-target", "1.5"}, "-target must be in (0,1]"},
		{"NaN target", []string{"-target", "NaN"}, "-target must be in (0,1]"},
		{"zero max errors", []string{"-max-errors", "0"}, "-max-errors must be >= 1"},
		{"fault prob above one", []string{"-faults", "1.2"}, "-faults probability must be in [0,1]"},
		{"negative fault prob", []string{"-faults", "-0.1"}, "-faults probability must be in [0,1]"},
		{"read prob above one", []string{"-fault-read", "2"}, "-fault-read probability must be in [0,1]"},
		{"negative fault clear", []string{"-fault-clear", "-1"}, "-fault-clear must be >= 0"},
		{"zero checkpoint every", []string{"-checkpoint-every", "0"}, "-checkpoint-every must be >= 1"},
		{"zero checkpoint full every", []string{"-checkpoint-full-every", "0"}, "-checkpoint-full-every must be >= 1"},
		{"resume without dir", []string{"-resume"}, "-resume requires -checkpoint-dir"},
		{"kill with checkpoints", []string{"-checkpoint-dir", "ck", "-fault-kill", "sim.checkpoint.published:2"}, ""},
		{"kill without dir", []string{"-fault-kill", "sim.checkpoint.published:2"}, "-fault-kill requires -checkpoint-dir"},
		{"malformed kill spec", []string{"-checkpoint-dir", "ck", "-fault-kill", "nohit"}, "-fault-kill:"},
		{"zero-hit kill spec", []string{"-checkpoint-dir", "ck", "-fault-kill", "x:0"}, "-fault-kill:"},
		{"sample above one", []string{"-events-out", "e", "-audit-sample", "1.01"}, "-audit-sample must be in [0,1]"},
		{"negative sample", []string{"-events-out", "e", "-audit-sample", "-0.2"}, "-audit-sample must be in [0,1]"},
		{"NaN sample", []string{"-events-out", "e", "-audit-sample", "NaN"}, "-audit-sample must be in [0,1]"},
		{"sample without events", []string{"-audit-sample", "0.5"}, "-audit-sample requires -events-out"},
		{"multiplex resume", []string{"-multiplex", "-checkpoint-dir", "ck", "-resume"}, "-resume is not supported with -multiplex"},
		{"multiplex kill", []string{"-multiplex", "-checkpoint-dir", "ck", "-fault-kill", "sim.checkpoint.published:2"}, "-fault-kill is not supported with -multiplex"},
		{"snapfile in and out differ", []string{"-vfs-snapshot", "a.snap", "-vfs-snapshot-out", "b.snap"}, ""},
		{"snapfile out only", []string{"-vfs-snapshot-out", "a.snap"}, ""},
		{"snapfile in equals out", []string{"-vfs-snapshot", "a.snap", "-vfs-snapshot-out", "a.snap"}, "name the same file"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if o == nil {
					t.Fatal("no options returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunEmitsObservability drives the whole tool end to end on a
// small synthetic dataset and checks the -metrics-out and -events-out
// artifacts: valid JSON with both policies' registries, and a JSONL
// stream the obs decoder can replay with per-trigger, per-miss, and
// sampled audit records for both policies.
func TestRunEmitsObservability(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 5, Users: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	if err := trace.WriteDataset(data, ds); err != nil {
		t.Fatal(err)
	}

	o := &options{
		data:        data,
		lifetime:    90,
		interval:    7,
		target:      0.5,
		maxErrors:   trace.DefaultMaxErrors,
		ckptEvery:   1,
		faultProb:   0.1,
		faultSeed:   11,
		metricsOut:  filepath.Join(dir, "metrics.json"),
		eventsOut:   filepath.Join(dir, "events.jsonl"),
		auditSample: 1,
	}
	var console strings.Builder
	if err := run(o, &console); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var perPolicy []policyMetrics
	if err := json.Unmarshal(blob, &perPolicy); err != nil {
		t.Fatal(err)
	}
	if len(perPolicy) != 2 {
		t.Fatalf("metrics for %d policies, want 2", len(perPolicy))
	}
	for _, pm := range perPolicy {
		counters := map[string]int64{}
		for _, c := range pm.Metrics.Counters {
			counters[c.Name] = c.Value
		}
		if counters[obs.MetricAccesses] == 0 {
			t.Errorf("%s: no accesses counted", pm.Policy)
		}
		if counters[obs.MetricTriggers] == 0 {
			t.Errorf("%s: no triggers counted", pm.Policy)
		}
		if len(pm.Phases) == 0 {
			t.Errorf("%s: no phase times recorded", pm.Policy)
		}
	}

	ef, err := os.Open(o.eventsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	triggers := map[string]int64{}
	var audits int64
	d := obs.NewDecoder(ef)
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev := ev.(type) {
		case *obs.TriggerEvent:
			triggers[ev.Policy]++
		case *obs.AuditEvent:
			audits++
		}
	}
	if len(triggers) != 2 {
		t.Fatalf("trigger events per policy = %v, want both policies present", triggers)
	}
	for pol, n := range triggers {
		if n == 0 {
			t.Fatalf("policy %s emitted no trigger events", pol)
		}
	}
	if audits == 0 {
		t.Fatal("no audit events at -audit-sample 1")
	}
	if !strings.Contains(console.String(), "telemetry events") {
		t.Fatalf("console output %q does not mention the event stream", console.String())
	}
}

// stripWall drops the volatile wall-clock suffixes so two runs'
// console transcripts can be compared for replay-content equality.
func stripWall(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, ", wall="); i >= 0 {
			line = line[:i]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestRunMultiplexMatchesSequential drives the tool end to end both
// ways — two dedicated replays vs one -multiplex pass, with fault
// injection on — and requires identical console transcripts modulo
// wall-clock times: same misses, same per-group reductions, same
// fault summaries.
func TestRunMultiplexMatchesSequential(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 5, Users: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	if err := trace.WriteDataset(data, ds); err != nil {
		t.Fatal(err)
	}
	runWith := func(multiplex bool) string {
		o := &options{
			data:      data,
			lifetime:  90,
			interval:  7,
			target:    0.5,
			maxErrors: trace.DefaultMaxErrors,
			ckptEvery: 1,
			faultProb: 0.1,
			faultSeed: 11,
			multiplex: multiplex,
		}
		var console strings.Builder
		if err := run(o, &console); err != nil {
			t.Fatal(err)
		}
		return stripWall(console.String())
	}
	seq, mux := runWith(false), runWith(true)
	if seq != mux {
		t.Fatalf("multiplexed transcript diverges from sequential:\n--- sequential\n%s\n--- multiplexed\n%s", seq, mux)
	}
}

// TestSnapshotSourcePrecedence pins the -vfs-snapshot vs snapshot-TSV
// precedence: when both sources are present the snapfile wins, and the
// tool must say so on the console instead of silently skipping the TSV
// (the old behavior). When the dataset has no snapshot TSV there is no
// conflict and no warning.
func TestSnapshotSourcePrecedence(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 5, Users: 40})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	if err := trace.WriteDataset(data, ds); err != nil {
		t.Fatal(err)
	}
	base := func() *options {
		return &options{
			data:      data,
			lifetime:  90,
			interval:  7,
			target:    0.5,
			maxErrors: trace.DefaultMaxErrors,
			ckptEvery: 1,
			faultSeed: 1,
		}
	}

	// First run: write the snapfile from the TSV snapshot.
	snap := filepath.Join(dir, "fs.snap")
	o := base()
	o.vfsSnapOut = snap
	var console strings.Builder
	if err := run(o, &console); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(console.String(), "warning:") {
		t.Fatalf("snapfile-write run warned without a conflict:\n%s", console.String())
	}

	// Both sources present: the snapfile must win, loudly.
	o = base()
	o.vfsSnap = snap
	console.Reset()
	if err := run(o, &console); err != nil {
		t.Fatal(err)
	}
	got := console.String()
	if !strings.Contains(got, "warning:") || !strings.Contains(got, "overrides the dataset snapshot") {
		t.Fatalf("no precedence warning with both sources present:\n%s", got)
	}
	if !strings.Contains(got, "opened snapfile") {
		t.Fatalf("snapfile was not the namespace source:\n%s", got)
	}

	// Snapfile only (TSV removed): same replay, no warning.
	if err := os.Remove(filepath.Join(data, trace.SnapshotFile)); err != nil {
		t.Fatal(err)
	}
	o = base()
	o.vfsSnap = snap
	console.Reset()
	if err := run(o, &console); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(console.String(), "warning:") {
		t.Fatalf("warned with no snapshot TSV present:\n%s", console.String())
	}
}
