// Command simulate replays a dataset's application log for the whole
// evaluation year under both FLT and ActiveDR and reports the file
// miss comparison (the paper's §4.3 headline experiment).
//
// Usage:
//
//	simulate -data ./data -lifetime 90 -target 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/archive"
	"activedr/internal/sim"
	"activedr/internal/stats"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		data     = flag.String("data", "data", "dataset directory (from tracegen)")
		lifetime = flag.Int("lifetime", 90, "initial file lifetime in days")
		target   = flag.Float64("target", 0.5, "ActiveDR purge target utilization")
		interval = flag.Int("interval", 7, "purge trigger interval in days")
		snapDir  = flag.String("snapshots", "", "write the FLT run's weekly metadata snapshot series to this directory")
	)
	flag.Parse()

	ds, err := trace.LoadDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{
		Lifetime:          timeutil.Days(*lifetime),
		TriggerInterval:   timeutil.Days(*interval),
		TargetUtilization: *target,
	}
	if *snapDir != "" {
		cfg.SnapshotEvery = timeutil.Days(7)
	}
	em, err := sim.New(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := em.RunComparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d accesses over %d days (lifetime %dd, trigger %dd, target %.0f%%)\n",
		cmp.FLT.TotalAccesses, len(cmp.FLT.Days), *lifetime, *interval, 100**target)
	fmt.Printf("%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.FLT.Policy, cmp.FLT.TotalMisses,
		100*float64(cmp.FLT.TotalMisses)/float64(cmp.FLT.TotalAccesses), cmp.FLT.Elapsed)
	fmt.Printf("%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.ActiveDR.Policy, cmp.ActiveDR.TotalMisses,
		100*float64(cmp.ActiveDR.TotalMisses)/float64(cmp.ActiveDR.TotalAccesses), cmp.ActiveDR.Elapsed)
	fmt.Printf("overall file-miss reduction: %.1f%%\n", 100*cmp.MissReduction())
	for _, m := range archive.Models() {
		fmt.Printf("restore cost under %s: FLT=%v ActiveDR=%v (saves %v)\n",
			m, cmp.FLT.RestoreCost(m).Round(time.Minute),
			cmp.ActiveDR.RestoreCost(m).Round(time.Minute),
			cmp.RestoreSavings(m).Round(time.Minute))
	}
	if *snapDir != "" {
		if err := trace.WriteSnapshotSeries(*snapDir, ds.Users, cmp.FLT.Snapshots); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d weekly snapshots to %s\n", len(cmp.FLT.Snapshots), *snapDir)
	}
	for _, g := range activeness.Groups() {
		f := cmp.FLT.MissesByGroup[g]
		a := cmp.ActiveDR.MissesByGroup[g]
		fmt.Printf("%-22s FLT=%7d ActiveDR=%7d reduction=%6.1f%%\n",
			g, f, a, 100*stats.ReductionRatio(float64(f), float64(a)))
	}
}
