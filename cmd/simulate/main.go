// Command simulate replays a dataset's application log for the whole
// evaluation year under both FLT and ActiveDR and reports the file
// miss comparison (the paper's §4.3 headline experiment).
//
// The replay is fault-tolerant: -faults injects deterministic purge
// failures (failed unlinks, interrupted scans), -checkpoint-dir
// persists resumable checkpoints at trigger boundaries (-resume picks
// the latest one up after a kill), and -lenient salvages what it can
// from damaged trace files instead of aborting.
//
// -multiplex replays both policies as lanes of a single multiplexed
// pass over one shared access stream instead of two dedicated replays.
// Results are identical (the sim equivalence suite pins this); the
// pass costs roughly one replay instead of two. Not combinable with
// -resume or -fault-kill, which need per-policy replay lifecycles.
//
// -shards N replays against a user-hash-sharded namespace (N
// goroutine-owned subtrees, k-way-merged scans); results stay
// bit-identical to the single tree. -vfs-snapshot-out writes the
// initial file system as a compact binary snapfile; -vfs-snapshot
// reopens one in place of the snapshot TSV, making startup an O(1)
// open plus lazy decoding instead of a full re-parse.
//
// Observability: -metrics-out dumps each policy's counter registry
// (plus per-phase wall-clock times) as JSON, -events-out streams
// per-trigger and per-miss telemetry as JSONL (cmd/report -events
// renders it), and -audit-sample adds a sampled per-file
// purge-decision audit to the event stream.
//
// Usage:
//
//	simulate -data ./data -lifetime 90 -target 0.5
//	simulate -data ./data -checkpoint-dir ./ckpt            # checkpointed run
//	simulate -data ./data -checkpoint-dir ./ckpt -resume    # pick up after a kill
//	simulate -data ./data -faults 0.05 -fault-seed 42       # inject purge faults
//	simulate -data ./data -lenient                          # salvage damaged traces
//	simulate -data ./data -multiplex                        # both policies in one pass
//	simulate -data ./data -metrics-out m.json -events-out e.jsonl -audit-sample 0.01
//	simulate -data ./data -vfs-snapshot-out fs.snap                 # write the binary snapfile
//	simulate -data ./data -vfs-snapshot fs.snap -shards 16          # reopen it, sharded replay
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/archive"
	"activedr/internal/faults"
	"activedr/internal/obs"
	"activedr/internal/profiling"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/stats"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// options carries every flag after validation; run never sees raw,
// unchecked flag values.
type options struct {
	data     string
	lifetime int
	target   float64
	interval int
	snapDir  string
	shards   int

	vfsSnap    string
	vfsSnapOut string

	lenient    bool
	maxErrors  int
	sequential bool

	faultProb  float64
	faultRead  float64
	faultSeed  uint64
	faultClear int
	faultKill  string

	ckptDir       string
	ckptEvery     int
	ckptFullEvery int
	resume        bool
	multiplex     bool

	metricsOut  string
	eventsOut   string
	auditSample float64

	cpuProfile string
	memProfile string
}

// parseFlags binds the flag set to an options struct and validates
// it. Errors come back to the caller (ContinueOnError) so tests can
// table-drive rejection without exiting the process.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.data, "data", "data", "dataset directory (from tracegen)")
	fs.IntVar(&o.lifetime, "lifetime", 90, "initial file lifetime in days")
	fs.Float64Var(&o.target, "target", 0.5, "ActiveDR purge target utilization, in (0,1]")
	fs.IntVar(&o.interval, "interval", 7, "purge trigger interval in days")
	fs.StringVar(&o.snapDir, "snapshots", "", "write the FLT run's weekly metadata snapshot series to this directory")
	fs.IntVar(&o.shards, "shards", 0, "replay against a user-hash-sharded namespace with this many shards (0 or 1 = single tree; results are bit-identical either way)")

	fs.StringVar(&o.vfsSnap, "vfs-snapshot", "", "open the initial file system from this binary snapfile instead of parsing the dataset's snapshot TSV")
	fs.StringVar(&o.vfsSnapOut, "vfs-snapshot-out", "", "write the initial file system to this binary snapfile after loading; later runs reopen it with -vfs-snapshot")

	fs.BoolVar(&o.lenient, "lenient", false, "quarantine malformed trace lines instead of aborting")
	fs.IntVar(&o.maxErrors, "max-errors", trace.DefaultMaxErrors, "per-file quarantine cap in -lenient mode")
	fs.BoolVar(&o.sequential, "sequential", false, "load trace files with the single-goroutine readers instead of the pipelined ones (A/B fallback)")

	fs.Float64Var(&o.faultProb, "faults", 0, "per-victim unlink-failure and per-trigger scan-interrupt probability")
	fs.Float64Var(&o.faultRead, "fault-read", 0, "per-attempt transient dataset-read failure probability (retried with backoff)")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault injector seed")
	fs.IntVar(&o.faultClear, "fault-clear", 0, "days into the replay after which purge faults clear (0 = never)")
	fs.StringVar(&o.faultKill, "fault-kill", "", "kill the replay at a named kill point, name:N (e.g. "+faults.KillSimCheckpointPublished+":2); requires -checkpoint-dir")

	fs.StringVar(&o.ckptDir, "checkpoint-dir", "", "persist resumable checkpoints under this directory (one subdirectory per policy)")
	fs.IntVar(&o.ckptEvery, "checkpoint-every", 1, "checkpoint once every N purge triggers")
	fs.IntVar(&o.ckptFullEvery, "checkpoint-full-every", 1, "make only every Kth checkpoint a full snapshot; the ones between persist deltas against the previous checkpoint (1 = every checkpoint full)")
	fs.BoolVar(&o.resume, "resume", false, "resume each policy from its latest checkpoint under -checkpoint-dir")

	fs.BoolVar(&o.multiplex, "multiplex", false, "replay both policies as lanes of one multiplexed pass over a shared access stream (identical results, one stream walk)")

	fs.StringVar(&o.metricsOut, "metrics-out", "", "write each policy's metrics registry and phase times to this JSON file")
	fs.StringVar(&o.eventsOut, "events-out", "", "stream per-trigger/per-miss telemetry to this JSONL file (see cmd/report -events)")
	fs.Float64Var(&o.auditSample, "audit-sample", 0, "fraction of per-file purge decisions to audit on the event stream, in [0,1]")

	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the replay to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

// validate rejects nonsensical flag combinations before any work
// happens; negated comparisons keep NaN out of the float knobs.
func (o *options) validate() error {
	if o.lifetime < 1 {
		return fmt.Errorf("-lifetime must be >= 1 day, got %d", o.lifetime)
	}
	if o.interval < 1 {
		return fmt.Errorf("-interval must be >= 1 day, got %d", o.interval)
	}
	if !(o.target > 0 && o.target <= 1) {
		return fmt.Errorf("-target must be in (0,1], got %v", o.target)
	}
	if o.maxErrors < 1 {
		return fmt.Errorf("-max-errors must be >= 1, got %d", o.maxErrors)
	}
	if o.shards < 0 || o.shards > vfs.MaxShards {
		return fmt.Errorf("-shards must be in [0,%d], got %d", vfs.MaxShards, o.shards)
	}
	if !(o.faultProb >= 0 && o.faultProb <= 1) {
		return fmt.Errorf("-faults probability must be in [0,1], got %v", o.faultProb)
	}
	if !(o.faultRead >= 0 && o.faultRead <= 1) {
		return fmt.Errorf("-fault-read probability must be in [0,1], got %v", o.faultRead)
	}
	if o.faultClear < 0 {
		return fmt.Errorf("-fault-clear must be >= 0 days, got %d", o.faultClear)
	}
	if o.faultKill != "" {
		if _, _, err := faults.ParseKillSpec(o.faultKill); err != nil {
			return fmt.Errorf("-fault-kill: %w", err)
		}
		if o.ckptDir == "" {
			return errors.New("-fault-kill requires -checkpoint-dir (a kill without a checkpoint leaves nothing to resume)")
		}
	}
	if o.ckptEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", o.ckptEvery)
	}
	if o.ckptFullEvery < 1 {
		return fmt.Errorf("-checkpoint-full-every must be >= 1, got %d", o.ckptFullEvery)
	}
	if o.resume && o.ckptDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	if o.multiplex && o.resume {
		return errors.New("-resume is not supported with -multiplex; resume the policies with dedicated replays, then drop -resume to go back to multiplexing")
	}
	if o.multiplex && o.faultKill != "" {
		return errors.New("-fault-kill is not supported with -multiplex (a kill tears down the shared pass, leaving the lanes at different trigger depths)")
	}
	if o.vfsSnap != "" && o.vfsSnap == o.vfsSnapOut {
		return errors.New("-vfs-snapshot and -vfs-snapshot-out name the same file; the rewrite would clobber the snapfile being read")
	}
	if !(o.auditSample >= 0 && o.auditSample <= 1) {
		return fmt.Errorf("-audit-sample must be in [0,1], got %v", o.auditSample)
	}
	if o.auditSample > 0 && o.eventsOut == "" {
		return errors.New("-audit-sample requires -events-out (the audit records ride the event stream)")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// policyMetrics is one policy's slice of the -metrics-out file.
type policyMetrics struct {
	Policy  string              `json:"policy"`
	Metrics obs.MetricsSnapshot `json:"metrics"`
	Phases  []obs.PhaseValue    `json:"phases"`
}

func run(o *options, out io.Writer) (err error) {
	stopProfiles, err := profiling.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	ds, err := loadDataset(o, out)
	if err != nil {
		return err
	}
	baseFS, err := openSnapfileBase(o, ds, out)
	if err != nil {
		return err
	}
	if o.vfsSnapOut != "" {
		if baseFS != nil {
			err = vfs.WriteSnapfile(o.vfsSnapOut, baseFS, ds.Snapshot.Taken)
		} else {
			err = vfs.WriteSnapfileFromSnapshot(o.vfsSnapOut, &ds.Snapshot)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote snapfile %s\n", o.vfsSnapOut)
	}

	cfg := sim.Config{
		Lifetime:          timeutil.Days(o.lifetime),
		TriggerInterval:   timeutil.Days(o.interval),
		TargetUtilization: o.target,
		Shards:            o.shards,
	}
	if o.snapDir != "" {
		cfg.SnapshotEvery = timeutil.Days(7)
	}

	faultCfg := faults.Config{
		Seed:              o.faultSeed,
		UnlinkFailProb:    o.faultProb,
		ScanInterruptProb: o.faultProb,
		KillSpec:          o.faultKill,
	}
	if o.faultClear > 0 {
		faultCfg.ClearAfter = ds.Snapshot.Taken.Add(timeutil.Days(o.faultClear))
	}
	if err := faultCfg.Validate(); err != nil {
		return err
	}

	// Both policies share one event stream (records carry the policy
	// name) but get their own registry, so -metrics-out can report
	// them side by side.
	var events *obs.EventWriter
	if o.eventsOut != "" {
		ef, err := os.Create(o.eventsOut)
		if err != nil {
			return err
		}
		events = obs.NewEventWriter(ef)
		defer func() {
			ferr := events.Flush()
			if cerr := ef.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil && err == nil {
				err = fmt.Errorf("events-out %s: %w", o.eventsOut, ferr)
			}
		}()
	}
	instrumented := o.metricsOut != "" || o.eventsOut != ""
	var perPolicy []policyMetrics

	// optsFor assembles one policy's run options — its own checkpoint
	// subdirectory, its own injector (same seed: comparable fault
	// streams), and, when instrumented, its own registry. The returned
	// finish records the registry snapshot once the replay is done.
	optsFor := func(name string) (sim.RunOptions, func(), error) {
		opts := sim.RunOptions{CheckpointEvery: o.ckptEvery, CheckpointFullEvery: o.ckptFullEvery}
		if o.ckptDir != "" {
			opts.CheckpointDir = filepath.Join(o.ckptDir, name)
		}
		if o.faultProb > 0 || o.faultKill != "" {
			cfg := faultCfg
			if o.resume && sim.HasCheckpoint(opts.CheckpointDir) {
				// A checkpoint predates its kill's fatal hit; resuming
				// with the spec intact would just die at the same spot.
				cfg.KillSpec = ""
			}
			opts.Faults = faults.New(cfg)
		}
		finish := func() {}
		if instrumented {
			var reg *obs.Registry
			if o.metricsOut != "" {
				reg = obs.NewRegistry()
			}
			ob, err := obs.NewObserver(reg, events, o.auditSample)
			if err != nil {
				return opts, nil, err
			}
			opts.Obs = ob
			finish = func() {
				if reg != nil {
					perPolicy = append(perPolicy, policyMetrics{
						Policy:  name,
						Metrics: reg.Snapshot(),
						Phases:  ob.Phases(),
					})
				}
			}
		}
		return opts, finish, nil
	}

	cmp := &sim.Comparison{}
	if o.multiplex {
		// Both policies ride one multiplexed pass as lanes over a
		// shared access stream; per-lane options keep checkpoints and
		// fault draws as independent as two dedicated replays.
		fltOpts, fltFinish, err := optsFor("flt")
		if err != nil {
			return err
		}
		adrOpts, adrFinish, err := optsFor("activedr")
		if err != nil {
			return err
		}
		lanes := []sim.LaneSpec{
			{Config: cfg, Policy: sim.PolicyFLT, Opts: fltOpts},
			{Config: cfg, Policy: sim.PolicyActiveDR, Opts: adrOpts},
		}
		var res []*sim.Result
		if baseFS != nil {
			res, err = sim.NewMultiplexerWithBase(ds, baseFS).Run(lanes)
		} else {
			res, err = sim.RunMultiplexed(ds, lanes)
		}
		if err != nil {
			return err
		}
		fltFinish()
		adrFinish()
		cmp.FLT, cmp.ActiveDR = res[0], res[1]
	} else {
		var em *sim.Emulator
		if baseFS != nil {
			em, err = sim.NewWithBase(ds, baseFS, cfg)
		} else {
			em, err = sim.New(ds, cfg)
		}
		if err != nil {
			return err
		}

		// Each policy replays independently, with its own checkpoint
		// subdirectory and its own injector.
		runPolicy := func(name string, policy retention.Policy) (*sim.Result, error) {
			opts, finish, err := optsFor(name)
			if err != nil {
				return nil, err
			}
			defer finish()
			var res *sim.Result
			if o.resume && sim.HasCheckpoint(opts.CheckpointDir) {
				res, err = em.Resume(policy, opts)
				if err == nil {
					fmt.Fprintf(out, "%-14s resumed from checkpoint in %s\n", name, opts.CheckpointDir)
				}
			} else {
				res, err = em.RunWith(policy, opts)
			}
			if errors.Is(err, sim.ErrInterrupted) {
				fmt.Fprintf(out, "%-14s killed at %s after %d triggers; rerun with -resume to recover from %s\n",
					name, o.faultKill, len(res.Reports), opts.CheckpointDir)
			}
			return res, err
		}

		adr, err := em.NewActiveDR()
		if err != nil {
			return err
		}
		if cmp.FLT, err = runPolicy("flt", em.NewFLT()); err != nil {
			return err
		}
		if cmp.ActiveDR, err = runPolicy("activedr", adr); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "replayed %d accesses over %d days (lifetime %dd, trigger %dd, target %.0f%%)\n",
		cmp.FLT.TotalAccesses, len(cmp.FLT.Days), o.lifetime, o.interval, 100*o.target)
	fmt.Fprintf(out, "%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.FLT.Policy, cmp.FLT.TotalMisses,
		100*float64(cmp.FLT.TotalMisses)/float64(cmp.FLT.TotalAccesses), cmp.FLT.Elapsed)
	fmt.Fprintf(out, "%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.ActiveDR.Policy, cmp.ActiveDR.TotalMisses,
		100*float64(cmp.ActiveDR.TotalMisses)/float64(cmp.ActiveDR.TotalAccesses), cmp.ActiveDR.Elapsed)
	fmt.Fprintf(out, "overall file-miss reduction: %.1f%%\n", 100*cmp.MissReduction())
	for _, m := range archive.Models() {
		fmt.Fprintf(out, "restore cost under %s: FLT=%v ActiveDR=%v (saves %v)\n",
			m, cmp.FLT.RestoreCost(m).Round(time.Minute),
			cmp.ActiveDR.RestoreCost(m).Round(time.Minute),
			cmp.RestoreSavings(m).Round(time.Minute))
	}
	if o.faultProb > 0 {
		printFaultSummary(out, cmp.FLT)
		printFaultSummary(out, cmp.ActiveDR)
	}
	if o.snapDir != "" {
		if err := trace.WriteSnapshotSeries(o.snapDir, ds.Users, cmp.FLT.Snapshots); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d weekly snapshots to %s\n", len(cmp.FLT.Snapshots), o.snapDir)
	}
	for _, g := range activeness.Groups() {
		f := cmp.FLT.MissesByGroup[g]
		a := cmp.ActiveDR.MissesByGroup[g]
		fmt.Fprintf(out, "%-22s FLT=%7d ActiveDR=%7d reduction=%6.1f%%\n",
			g, f, a, 100*stats.ReductionRatio(float64(f), float64(a)))
	}
	if o.metricsOut != "" {
		blob, err := json.MarshalIndent(perPolicy, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.metricsOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics for %d policies to %s\n", len(perPolicy), o.metricsOut)
	}
	if o.eventsOut != "" {
		fmt.Fprintf(out, "wrote %d telemetry events to %s\n", events.Count(), o.eventsOut)
	}
	return nil
}

// loadDataset reads the traces, optionally in lenient mode, and — when
// -fault-read is set — through the injector's transient-error gauntlet
// with retry/backoff, the way a flaky parallel file system would serve
// them.
// openSnapfileBase opens -vfs-snapshot, decodes it into the initial
// file system, and stamps its capture time onto the dataset (the TSV
// snapshot was skipped at load time, so ds.Snapshot.Taken is zero
// until here). Returns nil when the flag is unset.
func openSnapfileBase(o *options, ds *trace.Dataset, out io.Writer) (*vfs.FS, error) {
	if o.vfsSnap == "" {
		return nil, nil
	}
	sf, err := vfs.OpenSnapfile(o.vfsSnap)
	if err != nil {
		return nil, err
	}
	base, err := vfs.LoadSnapfileFS(sf)
	count := sf.Count()
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	ds.Snapshot.Taken = sf.Taken()
	// Snapfile records carry raw user ids; bound them against the user
	// table the way Dataset.Validate bounds TSV snapshot rows.
	for _, u := range base.Users() {
		if int(u) >= len(ds.Users) {
			return nil, fmt.Errorf("snapfile %s references unknown user %d (dataset has %d users)", o.vfsSnap, u, len(ds.Users))
		}
	}
	fmt.Fprintf(out, "opened snapfile %s: %d files (%.2f TB), taken %s\n",
		o.vfsSnap, count, float64(base.TotalBytes())/1e12, sf.Taken().DateString())
	return base, nil
}

func loadDataset(o *options, out io.Writer) (*trace.Dataset, error) {
	// -vfs-snapshot replaces the dataset's snapshot TSV as the namespace
	// source. When both exist the snapfile wins — say so out loud rather
	// than silently skipping a file the user shipped alongside the
	// traces and may believe is being honored.
	if o.vfsSnap != "" {
		tsv := filepath.Join(o.data, trace.SnapshotFile)
		if _, statErr := os.Stat(tsv); statErr == nil {
			fmt.Fprintf(out, "warning: -vfs-snapshot %s overrides the dataset snapshot %s; the TSV will not be parsed\n",
				o.vfsSnap, tsv)
		}
	}
	ropts := trace.ReadOptions{Lenient: o.lenient, MaxErrors: o.maxErrors, Sequential: o.sequential,
		SkipSnapshot: o.vfsSnap != ""}
	var inj *faults.Injector
	if o.faultRead > 0 {
		cfg := faults.Config{Seed: o.faultSeed, ReadFailProb: o.faultRead}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		inj = faults.New(cfg)
	}
	var (
		ds  *trace.Dataset
		rep *trace.DatasetReport
	)
	attempts := 0
	err := faults.Retry(5, 50*time.Millisecond, func() error {
		attempts++
		if inj != nil {
			if err := inj.ReadAttempt(); err != nil {
				return err
			}
		}
		var err error
		ds, rep, err = trace.LoadDatasetWith(o.data, ropts)
		return err
	})
	if err != nil {
		return nil, err
	}
	if attempts > 1 {
		fmt.Fprintf(out, "dataset load needed %d attempts (transient read faults retried)\n", attempts)
	}
	if ropts.Lenient && !rep.Clean() {
		fmt.Fprintf(out, "lenient load: %d malformed lines quarantined\n%s\n", rep.Errors(), rep.Summary())
	}
	return ds, nil
}

// printFaultSummary reports what the injector did to one policy's
// purge passes and whether the policy converged regardless.
func printFaultSummary(out io.Writer, res *sim.Result) {
	var failed, failedBytes int64
	incomplete := 0
	for _, r := range res.Reports {
		failed += r.FailedPurges
		failedBytes += r.FailedBytes
		if r.Incomplete {
			incomplete++
		}
	}
	last := "n/a"
	if n := len(res.Reports); n > 0 {
		last = fmt.Sprintf("%v", res.Reports[n-1].TargetReached)
	}
	fmt.Fprintf(out, "%-14s faults: failed unlinks=%d (%.1f GB unreclaimed at the time), interrupted scans=%d/%d, final trigger reached target: %s\n",
		res.Policy, failed, float64(failedBytes)/1e9, incomplete, len(res.Reports), last)
}
