// Command simulate replays a dataset's application log for the whole
// evaluation year under both FLT and ActiveDR and reports the file
// miss comparison (the paper's §4.3 headline experiment).
//
// The replay is fault-tolerant: -faults injects deterministic purge
// failures (failed unlinks, interrupted scans), -checkpoint-dir
// persists resumable checkpoints at trigger boundaries (-resume picks
// the latest one up after a kill), and -lenient salvages what it can
// from damaged trace files instead of aborting.
//
// Usage:
//
//	simulate -data ./data -lifetime 90 -target 0.5
//	simulate -data ./data -checkpoint-dir ./ckpt            # checkpointed run
//	simulate -data ./data -checkpoint-dir ./ckpt -resume    # pick up after a kill
//	simulate -data ./data -faults 0.05 -fault-seed 42       # inject purge faults
//	simulate -data ./data -lenient                          # salvage damaged traces
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/archive"
	"activedr/internal/faults"
	"activedr/internal/profiling"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/stats"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		data     = flag.String("data", "data", "dataset directory (from tracegen)")
		lifetime = flag.Int("lifetime", 90, "initial file lifetime in days")
		target   = flag.Float64("target", 0.5, "ActiveDR purge target utilization")
		interval = flag.Int("interval", 7, "purge trigger interval in days")
		snapDir  = flag.String("snapshots", "", "write the FLT run's weekly metadata snapshot series to this directory")

		lenient    = flag.Bool("lenient", false, "quarantine malformed trace lines instead of aborting")
		maxErrors  = flag.Int("max-errors", trace.DefaultMaxErrors, "per-file quarantine cap in -lenient mode")
		sequential = flag.Bool("sequential", false, "load trace files with the single-goroutine readers instead of the pipelined ones (A/B fallback)")

		faultProb  = flag.Float64("faults", 0, "per-victim unlink-failure and per-trigger scan-interrupt probability")
		faultRead  = flag.Float64("fault-read", 0, "per-attempt transient dataset-read failure probability (retried with backoff)")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault injector seed")
		faultClear = flag.Int("fault-clear", 0, "days into the replay after which purge faults clear (0 = never)")

		ckptDir   = flag.String("checkpoint-dir", "", "persist resumable checkpoints under this directory (one subdirectory per policy)")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint once every N purge triggers")
		resume    = flag.Bool("resume", false, "resume each policy from its latest checkpoint under -checkpoint-dir")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	ds := loadDataset(*data,
		trace.ReadOptions{Lenient: *lenient, MaxErrors: *maxErrors, Sequential: *sequential},
		*faultRead, *faultSeed)

	cfg := sim.Config{
		Lifetime:          timeutil.Days(*lifetime),
		TriggerInterval:   timeutil.Days(*interval),
		TargetUtilization: *target,
	}
	if *snapDir != "" {
		cfg.SnapshotEvery = timeutil.Days(7)
	}
	em, err := sim.New(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	faultCfg := faults.Config{
		Seed:              *faultSeed,
		UnlinkFailProb:    *faultProb,
		ScanInterruptProb: *faultProb,
	}
	if *faultClear > 0 {
		faultCfg.ClearAfter = ds.Snapshot.Taken.Add(timeutil.Days(*faultClear))
	}
	if err := faultCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// Each policy replays independently, with its own checkpoint
	// subdirectory and its own injector (same seed: comparable fault
	// streams).
	runPolicy := func(name string, policy retention.Policy) *sim.Result {
		opts := sim.RunOptions{CheckpointEvery: *ckptEvery}
		if *ckptDir != "" {
			opts.CheckpointDir = filepath.Join(*ckptDir, name)
		}
		if *faultProb > 0 {
			opts.Faults = faults.New(faultCfg)
		}
		var res *sim.Result
		var err error
		if *resume && sim.HasCheckpoint(opts.CheckpointDir) {
			res, err = em.Resume(policy, opts)
			if err == nil {
				fmt.Printf("%-14s resumed from checkpoint in %s\n", name, opts.CheckpointDir)
			}
		} else {
			res, err = em.RunWith(policy, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	adr, err := em.NewActiveDR()
	if err != nil {
		log.Fatal(err)
	}
	cmp := &sim.Comparison{
		FLT:      runPolicy("flt", em.NewFLT()),
		ActiveDR: runPolicy("activedr", adr),
	}

	fmt.Printf("replayed %d accesses over %d days (lifetime %dd, trigger %dd, target %.0f%%)\n",
		cmp.FLT.TotalAccesses, len(cmp.FLT.Days), *lifetime, *interval, 100**target)
	fmt.Printf("%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.FLT.Policy, cmp.FLT.TotalMisses,
		100*float64(cmp.FLT.TotalMisses)/float64(cmp.FLT.TotalAccesses), cmp.FLT.Elapsed)
	fmt.Printf("%-14s misses=%7d (%.2f%% of accesses), wall=%v\n",
		cmp.ActiveDR.Policy, cmp.ActiveDR.TotalMisses,
		100*float64(cmp.ActiveDR.TotalMisses)/float64(cmp.ActiveDR.TotalAccesses), cmp.ActiveDR.Elapsed)
	fmt.Printf("overall file-miss reduction: %.1f%%\n", 100*cmp.MissReduction())
	for _, m := range archive.Models() {
		fmt.Printf("restore cost under %s: FLT=%v ActiveDR=%v (saves %v)\n",
			m, cmp.FLT.RestoreCost(m).Round(time.Minute),
			cmp.ActiveDR.RestoreCost(m).Round(time.Minute),
			cmp.RestoreSavings(m).Round(time.Minute))
	}
	if *faultProb > 0 {
		printFaultSummary(cmp.FLT)
		printFaultSummary(cmp.ActiveDR)
	}
	if *snapDir != "" {
		if err := trace.WriteSnapshotSeries(*snapDir, ds.Users, cmp.FLT.Snapshots); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d weekly snapshots to %s\n", len(cmp.FLT.Snapshots), *snapDir)
	}
	for _, g := range activeness.Groups() {
		f := cmp.FLT.MissesByGroup[g]
		a := cmp.ActiveDR.MissesByGroup[g]
		fmt.Printf("%-22s FLT=%7d ActiveDR=%7d reduction=%6.1f%%\n",
			g, f, a, 100*stats.ReductionRatio(float64(f), float64(a)))
	}
}

// loadDataset reads the traces, optionally in lenient mode, and — when
// -fault-read is set — through the injector's transient-error gauntlet
// with retry/backoff, the way a flaky parallel file system would serve
// them.
func loadDataset(dir string, ropts trace.ReadOptions, readProb float64, seed uint64) *trace.Dataset {
	var inj *faults.Injector
	if readProb > 0 {
		cfg := faults.Config{Seed: seed, ReadFailProb: readProb}
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		inj = faults.New(cfg)
	}
	var (
		ds  *trace.Dataset
		rep *trace.DatasetReport
	)
	attempts := 0
	err := faults.Retry(5, 50*time.Millisecond, func() error {
		attempts++
		if inj != nil {
			if err := inj.ReadAttempt(); err != nil {
				return err
			}
		}
		var err error
		ds, rep, err = trace.LoadDatasetWith(dir, ropts)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if attempts > 1 {
		fmt.Printf("dataset load needed %d attempts (transient read faults retried)\n", attempts)
	}
	if ropts.Lenient && !rep.Clean() {
		fmt.Printf("lenient load: %d malformed lines quarantined\n%s\n", rep.Errors(), rep.Summary())
	}
	return ds
}

// printFaultSummary reports what the injector did to one policy's
// purge passes and whether the policy converged regardless.
func printFaultSummary(res *sim.Result) {
	var failed, failedBytes int64
	incomplete := 0
	for _, r := range res.Reports {
		failed += r.FailedPurges
		failedBytes += r.FailedBytes
		if r.Incomplete {
			incomplete++
		}
	}
	last := "n/a"
	if n := len(res.Reports); n > 0 {
		last = fmt.Sprintf("%v", res.Reports[n-1].TargetReached)
	}
	fmt.Printf("%-14s faults: failed unlinks=%d (%.1f GB unreclaimed at the time), interrupted scans=%d/%d, final trigger reached target: %s\n",
		res.Policy, failed, float64(failedBytes)/1e9, incomplete, len(res.Reports), last)
}
