package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadReserved(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reserved.txt")
	content := "# campaign data\n/lustre/atlas/u1/keep\n\n  /lustre/atlas/u2/file.dat  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := loadReserved(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
	if !rs.Covers("/lustre/atlas/u1/keep/sub/file") {
		t.Error("subtree reservation not loaded")
	}
	if !rs.Covers("/lustre/atlas/u2/file.dat") {
		t.Error("whitespace-trimmed path not loaded")
	}
	if rs.Covers("/lustre/atlas/u3/other") {
		t.Error("phantom reservation")
	}
}

func TestLoadReservedMissingFile(t *testing.T) {
	if _, err := loadReserved(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
