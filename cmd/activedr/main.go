// Command activedr runs a single data-retention (purge) pass over a
// dataset's metadata snapshot and prints the per-group report — the
// operation a facility cron job would perform.
//
// Usage:
//
//	activedr -data ./data -policy activedr -lifetime 90 -target 0.5 \
//	         -at 2016-08-23 [-reserve reserved.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// options carries every flag; validate fail-fasts on garbage before
// any dataset I/O starts (the PR-5 contract).
type options struct {
	data     string
	policy   string
	lifetime int
	target   float64
	atStr    string
	reserve  string
	strict   bool
	explain  string
	dryRun   bool
}

func parseFlags() *options {
	o := &options{}
	flag.StringVar(&o.data, "data", "data", "dataset directory (from tracegen)")
	flag.StringVar(&o.policy, "policy", "activedr", "policy: activedr or flt")
	flag.IntVar(&o.lifetime, "lifetime", 90, "initial file lifetime in days")
	flag.Float64Var(&o.target, "target", 0.5, "purge target utilization (0 disables)")
	flag.StringVar(&o.atStr, "at", "2016-08-23", "purge trigger date (YYYY-MM-DD)")
	flag.StringVar(&o.reserve, "reserve", "", "optional file with reserved paths, one per line")
	flag.BoolVar(&o.strict, "strict-eq7", false, "use the literal Eq. (7) lifetime product")
	flag.StringVar(&o.explain, "explain", "", "print the activeness audit of one user (login name) and exit")
	flag.BoolVar(&o.dryRun, "dry-run", false, "plan the purge without applying it and list the victims")
	flag.Parse()
	return o
}

func (o *options) validate() error {
	if o.data == "" {
		return fmt.Errorf("-data must name a dataset directory")
	}
	switch strings.ToLower(o.policy) {
	case "flt", "activedr":
	default:
		return fmt.Errorf("unknown -policy %q (want flt or activedr)", o.policy)
	}
	if o.lifetime < 1 {
		return fmt.Errorf("-lifetime must be >= 1 day, got %d", o.lifetime)
	}
	if !(o.target >= 0 && o.target <= 1) {
		return fmt.Errorf("-target must be in [0,1], got %v", o.target)
	}
	if _, err := time.Parse("2006-01-02", o.atStr); err != nil {
		return fmt.Errorf("bad -at date: %w", err)
	}
	if o.reserve != "" {
		if _, err := os.Stat(o.reserve); err != nil {
			return fmt.Errorf("-reserve: %w", err)
		}
	}
	if o.explain != "" && o.dryRun {
		return fmt.Errorf("-explain and -dry-run are mutually exclusive: -explain prints the audit and exits before any purge is planned")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("activedr: ")
	o := parseFlags()
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	at, err := time.Parse("2006-01-02", o.atStr)
	if err != nil {
		log.Fatalf("bad -at date: %v", err)
	}
	tc := timeutil.FromGo(at)

	ds, err := trace.LoadDataset(o.data)
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		log.Fatal(err)
	}
	var reserved *vfs.ReservedSet
	if o.reserve != "" {
		reserved, err = loadReserved(o.reserve)
		if err != nil {
			log.Fatal(err)
		}
	}

	ev := activeness.NewEvaluator(timeutil.Days(o.lifetime))
	jt := ev.AddType("job-submission", activeness.Operation)
	pt := ev.AddType("publication", activeness.Outcome)
	ev.RecordJobs(jt, ds.Jobs)
	ev.RecordPublications(pt, ds.Publications)
	if o.explain != "" {
		uid := ds.UserByName(o.explain)
		if uid == trace.NoUser {
			log.Fatalf("unknown user %q", o.explain)
		}
		fmt.Print(ev.Explain(uid, tc))
		return
	}
	ranks := ev.EvaluateAll(len(ds.Users), tc)

	var p retention.Policy
	switch strings.ToLower(o.policy) {
	case "flt":
		p = &retention.FLT{Lifetime: timeutil.Days(o.lifetime), Reserved: reserved}
	case "activedr":
		adr, err := retention.NewActiveDR(retention.Config{
			Lifetime:          timeutil.Days(o.lifetime),
			Capacity:          fsys.TotalBytes(),
			TargetUtilization: o.target,
			Reserved:          reserved,
			StrictEq7:         o.strict,
		})
		if err != nil {
			log.Fatal(err)
		}
		p = adr
	default:
		log.Fatalf("unknown policy %q (want flt or activedr)", o.policy)
	}

	var rep *retention.Report
	if o.dryRun {
		rep = retention.Plan(p, fsys, ranks, tc)
		fmt.Printf("DRY RUN — nothing was purged; %d victims:\n", len(rep.Victims))
		for i, v := range rep.Victims {
			if i == 20 {
				fmt.Printf("  … %d more\n", len(rep.Victims)-20)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	} else {
		rep = p.Purge(fsys, ranks, tc)
	}
	fmt.Println(rep)
	fmt.Printf("target: %.2f GB, reached: %v, retro passes: %d, exempt skipped: %d\n",
		float64(rep.TargetBytes)/1e9, rep.TargetReached, rep.RetroPasses, rep.SkippedExempt)
	for _, g := range activeness.Groups() {
		gs := rep.Groups[g]
		fmt.Printf("%-22s users=%5d purged %7d files / %9.2f GB (retained %9.2f GB), affected users=%d\n",
			g, gs.Users, gs.PurgedFiles, float64(gs.PurgedBytes)/1e9,
			float64(gs.RetainedBytes())/1e9, gs.AffectedUsers)
	}
}

func loadReserved(path string) (*vfs.ReservedSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rs := vfs.NewReservedSet()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rs.Add(line)
	}
	return rs, sc.Err()
}
