// Command activedr runs a single data-retention (purge) pass over a
// dataset's metadata snapshot and prints the per-group report — the
// operation a facility cron job would perform.
//
// Usage:
//
//	activedr -data ./data -policy activedr -lifetime 90 -target 0.5 \
//	         -at 2016-08-23 [-reserve reserved.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("activedr: ")
	var (
		data     = flag.String("data", "data", "dataset directory (from tracegen)")
		policy   = flag.String("policy", "activedr", "policy: activedr or flt")
		lifetime = flag.Int("lifetime", 90, "initial file lifetime in days")
		target   = flag.Float64("target", 0.5, "purge target utilization (0 disables)")
		atStr    = flag.String("at", "2016-08-23", "purge trigger date (YYYY-MM-DD)")
		reserve  = flag.String("reserve", "", "optional file with reserved paths, one per line")
		strict   = flag.Bool("strict-eq7", false, "use the literal Eq. (7) lifetime product")
		explain  = flag.String("explain", "", "print the activeness audit of one user (login name) and exit")
		dryRun   = flag.Bool("dry-run", false, "plan the purge without applying it and list the victims")
	)
	flag.Parse()

	at, err := time.Parse("2006-01-02", *atStr)
	if err != nil {
		log.Fatalf("bad -at date: %v", err)
	}
	tc := timeutil.FromGo(at)

	ds, err := trace.LoadDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		log.Fatal(err)
	}
	var reserved *vfs.ReservedSet
	if *reserve != "" {
		reserved, err = loadReserved(*reserve)
		if err != nil {
			log.Fatal(err)
		}
	}

	ev := activeness.NewEvaluator(timeutil.Days(*lifetime))
	jt := ev.AddType("job-submission", activeness.Operation)
	pt := ev.AddType("publication", activeness.Outcome)
	ev.RecordJobs(jt, ds.Jobs)
	ev.RecordPublications(pt, ds.Publications)
	if *explain != "" {
		uid := ds.UserByName(*explain)
		if uid == trace.NoUser {
			log.Fatalf("unknown user %q", *explain)
		}
		fmt.Print(ev.Explain(uid, tc))
		return
	}
	ranks := ev.EvaluateAll(len(ds.Users), tc)

	var p retention.Policy
	switch strings.ToLower(*policy) {
	case "flt":
		p = &retention.FLT{Lifetime: timeutil.Days(*lifetime), Reserved: reserved}
	case "activedr":
		adr, err := retention.NewActiveDR(retention.Config{
			Lifetime:          timeutil.Days(*lifetime),
			Capacity:          fsys.TotalBytes(),
			TargetUtilization: *target,
			Reserved:          reserved,
			StrictEq7:         *strict,
		})
		if err != nil {
			log.Fatal(err)
		}
		p = adr
	default:
		log.Fatalf("unknown policy %q (want flt or activedr)", *policy)
	}

	var rep *retention.Report
	if *dryRun {
		rep = retention.Plan(p, fsys, ranks, tc)
		fmt.Printf("DRY RUN — nothing was purged; %d victims:\n", len(rep.Victims))
		for i, v := range rep.Victims {
			if i == 20 {
				fmt.Printf("  … %d more\n", len(rep.Victims)-20)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	} else {
		rep = p.Purge(fsys, ranks, tc)
	}
	fmt.Println(rep)
	fmt.Printf("target: %.2f GB, reached: %v, retro passes: %d, exempt skipped: %d\n",
		float64(rep.TargetBytes)/1e9, rep.TargetReached, rep.RetroPasses, rep.SkippedExempt)
	for _, g := range activeness.Groups() {
		gs := rep.Groups[g]
		fmt.Printf("%-22s users=%5d purged %7d files / %9.2f GB (retained %9.2f GB), affected users=%d\n",
			g, gs.Users, gs.PurgedFiles, float64(gs.PurgedBytes)/1e9,
			float64(gs.RetainedBytes())/1e9, gs.AffectedUsers)
	}
}

func loadReserved(path string) (*vfs.ReservedSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rs := vfs.NewReservedSet()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rs.Add(line)
	}
	return rs, sc.Err()
}
