package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"activedr/internal/daemon"
	"activedr/internal/synth"
	"activedr/internal/trace"
)

func TestParseFlagsValidation(t *testing.T) {
	ok := []string{"-wal-dir", "w", "-checkpoint-dir", "c"}
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = accepted
	}{
		{"minimal", ok, ""},
		{"flt policy", append([]string{"-policy", "flt"}, ok...), ""},
		{"chaos drill", append([]string{"-wal-fault-torn", "0.1", "-wal-fault-kill", daemon.KillWALSynced + ":3"}, ok...), ""},
		{"oneshot with feed", append([]string{"-feed", "f.tsv", "-oneshot"}, ok...), ""},

		{"missing wal dir", []string{"-checkpoint-dir", "c"}, "-wal-dir is required"},
		{"missing checkpoint dir", []string{"-wal-dir", "w"}, "-checkpoint-dir is required"},
		{"unknown policy", append([]string{"-policy", "lru"}, ok...), "-policy must be activedr or flt"},
		{"zero lifetime", append([]string{"-lifetime", "0"}, ok...), "-lifetime must be >= 1"},
		{"zero interval", append([]string{"-interval", "0"}, ok...), "-interval must be >= 1"},
		{"target above one", append([]string{"-target", "1.5"}, ok...), "-target must be in (0,1]"},
		{"NaN target", append([]string{"-target", "NaN"}, ok...), "-target must be in (0,1]"},
		{"zero queue depth", append([]string{"-queue-depth", "0"}, ok...), "-queue-depth must be >= 1"},
		{"zero sync every", append([]string{"-sync-every", "0"}, ok...), "-sync-every must be >= 1"},
		{"zero checkpoint every", append([]string{"-checkpoint-every", "0"}, ok...), "-checkpoint-every must be >= 1"},
		{"negative segment bytes", append([]string{"-segment-bytes", "-1"}, ok...), "-segment-bytes must be >= 0"},
		{"zero retries", append([]string{"-retries", "0"}, ok...), "-retries must be >= 1"},
		{"fault prob above one", append([]string{"-faults", "1.2"}, ok...), "-faults probability must be in [0,1]"},
		{"torn prob above one", append([]string{"-wal-fault-torn", "2"}, ok...), "-wal-fault-torn probability must be in [0,1]"},
		{"negative write prob", append([]string{"-wal-fault-write", "-0.5"}, ok...), "-wal-fault-write probability must be in [0,1]"},
		{"negative disk full", append([]string{"-wal-fault-disk-full", "-1"}, ok...), "-wal-fault-disk-full must be >= 0"},
		{"malformed kill spec", append([]string{"-wal-fault-kill", "nohit"}, ok...), "-wal-fault-kill:"},
		{"zero-hit kill spec", append([]string{"-wal-fault-kill", "x:0"}, ok...), "-wal-fault-kill:"},
		{"zero feed batch", append([]string{"-feed-batch", "0"}, ok...), "-feed-batch must be >= 1"},
		{"oneshot without feed", append([]string{"-oneshot"}, ok...), "-oneshot requires -feed"},
		{"unknown flag", append([]string{"-bogus"}, ok...), "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if o == nil {
					t.Fatal("no options returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// writeFixture generates a small synthetic dataset on disk plus a TSV
// feed of its whole access log, returning (dataDir, feedPath, nEvents).
func writeFixture(t *testing.T) (string, string, int) {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 25})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	if err := trace.WriteDataset(dataDir, ds); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.WriteString("# synthetic feed\n")
	for i := range ds.Accesses {
		ev := daemon.AccessEvent(&ds.Accesses[i])
		line, err := ev.Encode(ds.Users)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	feed := filepath.Join(dir, "feed.tsv")
	if err := os.WriteFile(feed, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return dataDir, feed, len(ds.Accesses)
}

// TestOneshotFeedAndRecovery runs the daemon end to end in -oneshot
// mode, then restarts it over the same dirs and checks the drained
// checkpoint carried every acknowledged event across the restart.
func TestOneshotFeedAndRecovery(t *testing.T) {
	dataDir, feed, n := writeFixture(t)
	dir := t.TempDir()
	metricsOut := filepath.Join(dir, "metrics.json")

	args := []string{
		"-data", dataDir,
		"-wal-dir", filepath.Join(dir, "wal"),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-feed", feed, "-oneshot",
		"-metrics-out", metricsOut,
	}
	o, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), o, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	st := decodeStatus(t, out.String())
	if st.Applied != n || st.State != "running" {
		t.Fatalf("status = %+v, want %d applied events", st, n)
	}
	if _, err := os.Stat(metricsOut); err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}

	// Restart over the same dirs with an empty feed: recovery must
	// restore every event without replay (the drain checkpointed).
	empty := filepath.Join(dir, "empty.tsv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	o2, err := parseFlags([]string{
		"-data", dataDir,
		"-wal-dir", filepath.Join(dir, "wal"),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-feed", empty, "-oneshot",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), o2, &out); err != nil {
		t.Fatalf("restart run: %v\noutput:\n%s", err, out.String())
	}
	st2 := decodeStatus(t, out.String())
	if st2.Applied != n {
		t.Fatalf("restart applied = %d, want %d", st2.Applied, n)
	}
	if st2.Recovered != 0 {
		t.Fatalf("restart replayed %d WAL records, want 0 after a graceful drain", st2.Recovered)
	}
}

// TestKillThenRecoverCLI drives the chaos flags end to end: a daemon
// killed at the post-fsync kill point on its last feed batch, then a
// clean restart that recovers every durable event from the WAL.
func TestKillThenRecoverCLI(t *testing.T) {
	dataDir, feed, n := writeFixture(t)
	dir := t.TempDir()
	base := []string{
		"-data", dataDir,
		"-wal-dir", filepath.Join(dir, "wal"),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-checkpoint-every", "1000", // recovery must come from the WAL
	}
	o, err := parseFlags(append([]string{
		"-feed", feed, "-oneshot",
		"-feed-batch", "64",
		"-wal-fault-kill", daemon.KillWALSynced + ":1",
	}, base...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(context.Background(), o, &out)
	if err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("run = %v, want kill-point error", err)
	}

	empty := filepath.Join(dir, "empty.tsv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	o2, err := parseFlags(append([]string{"-feed", empty, "-oneshot"}, base...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), o2, &out); err != nil {
		t.Fatalf("recovery run: %v\noutput:\n%s", err, out.String())
	}
	st := decodeStatus(t, out.String())
	if st.Applied != 64 || st.Recovered != 64 {
		t.Fatalf("recovered status = %+v, want 64 applied and 64 replayed (first batch fsynced before the kill)", st)
	}
	if n <= 64 {
		t.Fatalf("fixture too small for the kill matrix: %d events", n)
	}
}

// statusDoc is the subset of the printed status document the CLI
// tests assert on.
type statusDoc struct {
	State     string `json:"state"`
	Applied   int    `json:"applied_events"`
	Recovered int    `json:"recovered_events"`
}

// decodeStatus extracts the trailing JSON document from run's output.
func decodeStatus(t *testing.T, out string) statusDoc {
	t.Helper()
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no status document in output:\n%s", out)
	}
	var st statusDoc
	if err := json.Unmarshal([]byte(out[i:]), &st); err != nil {
		t.Fatalf("status decode: %v\noutput:\n%s", err, out)
	}
	return st
}

// syncBuf is a goroutine-safe buffer for watching the server's output
// from the test while run() writes to it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`serving on http://([\d.:]+)`)

// TestServeIngestAndSignalDrain runs the real server: ingests part of
// the feed over HTTP, then cancels the signal context and checks the
// drain checkpoints everything for the next incarnation.
func TestServeIngestAndSignalDrain(t *testing.T) {
	dataDir, feed, _ := writeFixture(t)
	dir := t.TempDir()
	o, err := parseFlags([]string{
		"-data", dataDir,
		"-wal-dir", filepath.Join(dir, "wal"),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-checkpoint-every", "1000", // only the drain checkpoint persists state
		"-listen", "127.0.0.1:0",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuf
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, &out) }()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == ""; {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body, err := os.ReadFile(feed)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(body), "\n")
	part := strings.Join(lines[:40], "")
	resp, err := http.Post("http://"+addr+"/v1/ingest", "text/tab-separated-values",
		strings.NewReader(part))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest = %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()

	var st statusDoc
	resp, err = http.Get("http://" + addr + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	applied := st.Applied
	if applied == 0 {
		t.Fatal("no events applied over HTTP")
	}

	cancel() // stands in for SIGTERM: same signal.NotifyContext path
	if err := <-done; err != nil {
		t.Fatalf("run after drain: %v\noutput:\n%s", err, out.String())
	}

	// Next incarnation: the drain checkpoint carries every event.
	empty := filepath.Join(dir, "empty.tsv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	o2, err := parseFlags([]string{
		"-data", dataDir,
		"-wal-dir", filepath.Join(dir, "wal"),
		"-checkpoint-dir", filepath.Join(dir, "ckpt"),
		"-feed", empty, "-oneshot",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run(context.Background(), o2, &out2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	st2 := decodeStatus(t, out2.String())
	if st2.Applied != applied || st2.Recovered != 0 {
		t.Fatalf("restart status = %+v, want %d applied and 0 replayed", st2, applied)
	}
}
