// Command activedrd runs the crash-safe retention daemon: it loads a
// dataset's reference snapshot and activity logs, recovers its replay
// state from the latest durable checkpoint plus the write-ahead log
// tail, and then serves a local HTTP/JSON API while ingesting
// create/access/unlink events through the WAL.
//
// Durability contract: an event is acknowledged only after it is
// fsynced into the WAL and applied; killed at any instant, the next
// incarnation recovers to purge plans bit-identical to a batch replay
// of every acknowledged event (internal/daemon's chaos harness
// enforces this). Feeders resume from /v1/status's applied_events.
//
// Usage:
//
//	activedrd -data ./data -wal-dir ./wal -checkpoint-dir ./ckpt
//	activedrd ... -listen 127.0.0.1:7421                 # HTTP API address
//	activedrd ... -feed events.tsv -oneshot              # batch ingest, then exit
//	activedrd ... -wal-fault-torn 0.01 -wal-fault-kill daemon.wal.synced:3   # chaos drill
//
// API: GET /healthz /readyz /metrics /v1/status /v1/ranks
// /v1/plan?user=U /v1/victims?limit=N, POST /v1/ingest (TSV feed;
// 429 on backpressure, 503 degraded).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"activedr/internal/daemon"
	"activedr/internal/faults"
	"activedr/internal/obs"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// options carries every flag after validation; run never sees raw,
// unchecked flag values.
type options struct {
	data    string
	listen  string
	walDir  string
	ckptDir string
	policy  string

	lifetime int
	target   float64
	interval int

	queueDepth   int
	syncEvery    int
	ckptEvery    int
	segmentBytes int64
	retries      int

	lenient   bool
	maxErrors int

	faultProb float64
	faultSeed uint64

	walFaultWrite    float64
	walFaultTorn     float64
	walFaultDiskFull int64
	walFaultKill     string
	walFaultSeed     uint64

	feed      string
	feedBatch int
	oneshot   bool

	metricsOut string
	eventsOut  string
}

// parseFlags binds the flag set to an options struct and validates
// it. Errors come back to the caller (ContinueOnError) so tests can
// table-drive rejection without exiting the process.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("activedrd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.data, "data", "data", "dataset directory (from tracegen)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7421", "HTTP API listen address")
	fs.StringVar(&o.walDir, "wal-dir", "", "write-ahead log directory (required)")
	fs.StringVar(&o.ckptDir, "checkpoint-dir", "", "durable checkpoint directory (required)")
	fs.StringVar(&o.policy, "policy", "activedr", "retention policy: activedr or flt")

	fs.IntVar(&o.lifetime, "lifetime", 90, "initial file lifetime in days")
	fs.Float64Var(&o.target, "target", 0.5, "ActiveDR purge target utilization, in (0,1]")
	fs.IntVar(&o.interval, "interval", 7, "purge trigger interval in days")

	fs.IntVar(&o.queueDepth, "queue-depth", 64, "bounded ingest queue depth in batches (overflow = HTTP 429)")
	fs.IntVar(&o.syncEvery, "sync-every", 256, "fsync the WAL at least once every N events within a batch")
	fs.IntVar(&o.ckptEvery, "checkpoint-every", 1, "checkpoint once every N purge triggers")
	fs.Int64Var(&o.segmentBytes, "segment-bytes", 0, "WAL segment roll threshold in bytes (0 = default)")
	fs.IntVar(&o.retries, "retries", 5, "WAL append attempts before the daemon degrades (jittered exponential backoff between)")

	fs.BoolVar(&o.lenient, "lenient", false, "quarantine malformed trace lines instead of aborting")
	fs.IntVar(&o.maxErrors, "max-errors", trace.DefaultMaxErrors, "per-file quarantine cap in -lenient mode")

	fs.Float64Var(&o.faultProb, "faults", 0, "per-victim unlink-failure and per-trigger scan-interrupt probability (purge-level chaos)")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "purge-level fault injector seed")

	fs.Float64Var(&o.walFaultWrite, "wal-fault-write", 0, "per-attempt transient WAL write failure probability (write-path chaos)")
	fs.Float64Var(&o.walFaultTorn, "wal-fault-torn", 0, "per-write torn-write probability (write-path chaos; a tear kills the daemon)")
	fs.Int64Var(&o.walFaultDiskFull, "wal-fault-disk-full", 0, "fail WAL writes with ENOSPC after this many bytes (0 = never)")
	fs.StringVar(&o.walFaultKill, "wal-fault-kill", "", "kill the daemon at a named kill point, name:N (e.g. "+daemon.KillWALSynced+":3 or "+daemon.KillRecoverRecord+":5)")
	fs.Uint64Var(&o.walFaultSeed, "wal-fault-seed", 1, "write-path fault injector seed (separate stream from -fault-seed)")

	fs.StringVar(&o.feed, "feed", "", "ingest this TSV event feed (ts\\tuser\\top\\tsize\\tpath) before serving; @accesses replays the dataset's own access log")
	fs.IntVar(&o.feedBatch, "feed-batch", 256, "events per ingest batch when replaying -feed")
	fs.BoolVar(&o.oneshot, "oneshot", false, "exit after replaying -feed instead of serving (requires -feed)")

	fs.StringVar(&o.metricsOut, "metrics-out", "", "write the final metrics registry to this JSON file at shutdown")
	fs.StringVar(&o.eventsOut, "events-out", "", "stream per-trigger/per-miss telemetry to this JSONL file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

// validate rejects nonsensical flag combinations before any state
// exists; negated comparisons keep NaN out of the float knobs.
func (o *options) validate() error {
	if o.walDir == "" {
		return errors.New("-wal-dir is required (the daemon is only crash-safe with a write-ahead log)")
	}
	if o.ckptDir == "" {
		return errors.New("-checkpoint-dir is required (recovery replays the WAL from the latest checkpoint)")
	}
	if o.policy != "activedr" && o.policy != "flt" {
		return fmt.Errorf("-policy must be activedr or flt, got %q", o.policy)
	}
	if o.lifetime < 1 {
		return fmt.Errorf("-lifetime must be >= 1 day, got %d", o.lifetime)
	}
	if o.interval < 1 {
		return fmt.Errorf("-interval must be >= 1 day, got %d", o.interval)
	}
	if !(o.target > 0 && o.target <= 1) {
		return fmt.Errorf("-target must be in (0,1], got %v", o.target)
	}
	if o.queueDepth < 1 {
		return fmt.Errorf("-queue-depth must be >= 1, got %d", o.queueDepth)
	}
	if o.syncEvery < 1 {
		return fmt.Errorf("-sync-every must be >= 1, got %d", o.syncEvery)
	}
	if o.ckptEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", o.ckptEvery)
	}
	if o.segmentBytes < 0 {
		return fmt.Errorf("-segment-bytes must be >= 0, got %d", o.segmentBytes)
	}
	if o.retries < 1 {
		return fmt.Errorf("-retries must be >= 1, got %d", o.retries)
	}
	if o.maxErrors < 1 {
		return fmt.Errorf("-max-errors must be >= 1, got %d", o.maxErrors)
	}
	if !(o.faultProb >= 0 && o.faultProb <= 1) {
		return fmt.Errorf("-faults probability must be in [0,1], got %v", o.faultProb)
	}
	if !(o.walFaultWrite >= 0 && o.walFaultWrite <= 1) {
		return fmt.Errorf("-wal-fault-write probability must be in [0,1], got %v", o.walFaultWrite)
	}
	if !(o.walFaultTorn >= 0 && o.walFaultTorn <= 1) {
		return fmt.Errorf("-wal-fault-torn probability must be in [0,1], got %v", o.walFaultTorn)
	}
	if o.walFaultDiskFull < 0 {
		return fmt.Errorf("-wal-fault-disk-full must be >= 0 bytes, got %d", o.walFaultDiskFull)
	}
	if o.walFaultKill != "" {
		if _, _, err := faults.ParseKillSpec(o.walFaultKill); err != nil {
			return fmt.Errorf("-wal-fault-kill: %w", err)
		}
	}
	if o.feedBatch < 1 {
		return fmt.Errorf("-feed-batch must be >= 1, got %d", o.feedBatch)
	}
	if o.oneshot && o.feed == "" {
		return errors.New("-oneshot requires -feed (nothing to do and no server to run)")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("activedrd: ")
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, o *options, out io.Writer) (err error) {
	ds, rep, err := trace.LoadDatasetWith(o.data, trace.ReadOptions{
		Lenient: o.lenient, MaxErrors: o.maxErrors,
	})
	if err != nil {
		return err
	}
	if o.lenient && !rep.Clean() {
		fmt.Fprintf(out, "lenient load: %d malformed lines quarantined\n", rep.Errors())
	}

	reg := obs.NewRegistry()
	var events *obs.EventWriter
	if o.eventsOut != "" {
		ef, cerr := os.Create(o.eventsOut)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := ef.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		events = obs.NewEventWriter(ef)
	}
	observer, err := obs.NewObserver(reg, events, 0)
	if err != nil {
		return err
	}

	cfg := daemon.Config{
		WALDir:        o.walDir,
		CheckpointDir: o.ckptDir,
		Policy:        o.policy,
		Sim: sim.Config{
			Lifetime:          timeutil.Days(o.lifetime),
			TriggerInterval:   timeutil.Days(o.interval),
			TargetUtilization: o.target,
		},
		QueueDepth:      o.queueDepth,
		SyncEvery:       o.syncEvery,
		CheckpointEvery: o.ckptEvery,
		SegmentBytes:    o.segmentBytes,
		RetryAttempts:   o.retries,
		BackoffSeed:     o.walFaultSeed,
		Obs:             observer,
	}
	if o.faultProb > 0 {
		fc := faults.Config{Seed: o.faultSeed, UnlinkFailProb: o.faultProb, ScanInterruptProb: o.faultProb}
		if err := fc.Validate(); err != nil {
			return err
		}
		cfg.Faults = faults.New(fc)
	}
	if o.walFaultWrite > 0 || o.walFaultTorn > 0 || o.walFaultDiskFull > 0 || o.walFaultKill != "" {
		wc := faults.Config{
			Seed:               o.walFaultSeed,
			WriteFailProb:      o.walFaultWrite,
			TornWriteProb:      o.walFaultTorn,
			DiskFullAfterBytes: o.walFaultDiskFull,
			KillSpec:           o.walFaultKill,
		}
		if err := wc.Validate(); err != nil {
			return err
		}
		cfg.WALFaults = faults.New(wc)
	}

	d, err := daemon.New(ds, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := d.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if o.metricsOut != "" {
			if merr := writeMetrics(o.metricsOut, reg); merr != nil && err == nil {
				err = merr
			}
		}
	}()

	if o.feed != "" {
		if err := replayFeed(d, ds, o, out); err != nil {
			return err
		}
	}
	if o.oneshot {
		return printStatus(d, out)
	}

	srv := &http.Server{Handler: d.Handler()}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving on http://%s (SIGTERM drains and checkpoints)\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "signal received; draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		return nil // the deferred Close drains and checkpoints
	}
}

// replayFeed batch-ingests a TSV event feed through the same
// WAL-acknowledged path HTTP ingestion uses. The sentinel @accesses
// replays the dataset's own access log (CI drills and smoke runs).
func replayFeed(d *daemon.Daemon, ds *trace.Dataset, o *options, out io.Writer) error {
	var evs []daemon.Event
	if o.feed == "@accesses" {
		evs = make([]daemon.Event, len(ds.Accesses))
		for i := range ds.Accesses {
			evs[i] = daemon.AccessEvent(&ds.Accesses[i])
		}
	} else {
		body, err := os.ReadFile(o.feed)
		if err != nil {
			return err
		}
		evs, err = daemon.ParseFeed(string(body), trace.NameIndex(ds.Users))
		if err != nil {
			return fmt.Errorf("%s: %w", o.feed, err)
		}
	}
	for i := 0; i < len(evs); i += o.feedBatch {
		end := min(i+o.feedBatch, len(evs))
		if err := d.Ingest(evs[i:end]); err != nil {
			return fmt.Errorf("feed batch [%d:%d): %w", i, end, err)
		}
	}
	fmt.Fprintf(out, "ingested %d events from %s\n", len(evs), o.feed)
	return nil
}

// printStatus renders the daemon's status document, exactly as
// GET /v1/status would serve it.
func printStatus(d *daemon.Daemon, out io.Writer) error { return d.WriteStatus(out) }

// writeMetrics dumps the final registry snapshot as JSON.
func writeMetrics(path string, reg *obs.Registry) error {
	b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
