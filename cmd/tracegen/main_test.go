package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activedr/internal/trace"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = accepted
	}{
		{"defaults", nil, ""},
		{"explicit", []string{"-out", "d", "-users", "10", "-seed", "7", "-q"}, ""},
		{"empty out", []string{"-out", ""}, "-out must not be empty"},
		{"zero users", []string{"-users", "0"}, "-users must be >= 1"},
		{"negative users", []string{"-users", "-3"}, "-users must be >= 1"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"in2p3 with fit", []string{"-from-in2p3", "jobs.csv", "-fit", "m.json"}, ""},
		{"model with scale", []string{"-model", "m.json", "-scale", "10"}, ""},
		{"preset and in2p3", []string{"-preset", "spider", "-from-in2p3", "j.csv"}, "mutually exclusive"},
		{"in2p3 and model", []string{"-from-in2p3", "j.csv", "-model", "m.json"}, "mutually exclusive"},
		{"fit without in2p3", []string{"-fit", "m.json"}, "-fit requires -from-in2p3"},
		{"scale without model", []string{"-scale", "5"}, "-scale requires -model"},
		{"zero scale", []string{"-model", "m.json", "-scale", "0"}, "-scale must be >= 1"},
		{"lenient without in2p3", []string{"-lenient"}, "-lenient requires -from-in2p3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if o == nil {
					t.Fatal("no options returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunWritesDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	var summary strings.Builder
	if err := run(&options{out: dir, users: 20, seed: 3}, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "20 users") {
		t.Fatalf("summary %q does not mention the user count", summary.String())
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*")); len(m) == 0 {
		t.Fatal("no dataset files written")
	}
}

// TestRunIN2P3FitRegen drives the full adapt -> fit -> regen loop
// through the command surface: adapt the bundled IN2P3 sample, fit a
// model, regenerate at 2x into a snapfile, and check the outputs land.
func TestRunIN2P3FitRegen(t *testing.T) {
	dir := t.TempDir()
	sample := filepath.Join("..", "..", "internal", "workload", "testdata", "in2p3_sample.csv")
	model := filepath.Join(dir, "model.json")
	var out strings.Builder
	o, err := parseFlags([]string{
		"-out", filepath.Join(dir, "real"),
		"-from-in2p3", sample,
		"-fit", model,
		"-seed", "7",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fitted 12-user model") {
		t.Fatalf("summary %q does not mention the fitted model", out.String())
	}

	snap := filepath.Join(dir, "big.snap")
	out.Reset()
	o, err = parseFlags([]string{
		"-out", filepath.Join(dir, "big"),
		"-model", model,
		"-scale", "2",
		"-seed", "7",
		"-vfs-snapshot-out", snap,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "regenerated") || !strings.Contains(out.String(), "24 users") {
		t.Fatalf("summary %q does not report the 2x regeneration", out.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapfile not written: %v", err)
	}
	// The scaled dataset must load cleanly with the snapshot left out.
	ds, err := trace.LoadDataset(filepath.Join(dir, "big"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 24 {
		t.Fatalf("regenerated dataset has %d users, want 24", len(ds.Users))
	}
}
