package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = accepted
	}{
		{"defaults", nil, ""},
		{"explicit", []string{"-out", "d", "-users", "10", "-seed", "7", "-q"}, ""},
		{"empty out", []string{"-out", ""}, "-out must not be empty"},
		{"zero users", []string{"-users", "0"}, "-users must be >= 1"},
		{"negative users", []string{"-users", "-3"}, "-users must be >= 1"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if o == nil {
					t.Fatal("no options returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunWritesDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	var summary strings.Builder
	if err := run(&options{out: dir, users: 20, seed: 3}, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "20 users") {
		t.Fatalf("summary %q does not mention the user count", summary.String())
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*")); len(m) == 0 {
		t.Fatal("no dataset files written")
	}
}
