// Command tracegen generates a synthetic OLCF-like trace dataset —
// user list, job scheduler log, application (file access) log,
// publication list, and reference metadata snapshot — into a
// directory consumable by cmd/activedr and cmd/simulate.
//
// -preset spider streams a Spider II-scale namespace (a million
// users, over ten million files) directly into a binary snapfile in
// bounded memory, skipping the snapshot TSV entirely; cmd/simulate
// reopens it with -vfs-snapshot.
//
// -from-in2p3 adapts an IN2P3-style job accounting export (CSV/TSV,
// facility-local timestamps) into a dataset; -fit compresses the
// adapted trace into a reconstruction model, and -model/-scale
// regenerate a statistically faithful trace from such a model at a
// user-scale multiplier. With -vfs-snapshot-out, the scaled snapshot
// streams straight into a binary snapfile in bounded memory.
//
// Usage:
//
//	tracegen -out ./data -users 2000 -seed 42
//	tracegen -out ./data -preset spider
//	tracegen -out ./data -from-in2p3 jobs.csv -fit model.json
//	tracegen -out ./big -model model.json -scale 10 -vfs-snapshot-out big.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"activedr/internal/synth"
	"activedr/internal/trace"
	"activedr/internal/vfs"
	"activedr/internal/workload"
)

// options carries tracegen's flags after validation.
type options struct {
	out        string
	users      int
	seed       uint64
	quiet      bool
	sequential bool
	snapOut    string
	preset     string
	usersSet   bool

	fromIN2P3 string
	zone      string
	lenient   bool
	fitOut    string
	model     string
	scale     int
}

// parseFlags binds the flag set to an options struct and validates
// it; errors come back to the caller so tests can table-drive
// rejection without exiting the process.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.out, "out", "data", "output directory")
	fs.IntVar(&o.users, "users", 2000, "number of users")
	fs.Uint64Var(&o.seed, "seed", 0, "random seed (0 = built-in default)")
	fs.BoolVar(&o.quiet, "q", false, "suppress the summary")
	fs.BoolVar(&o.sequential, "sequential", false, "write trace files one at a time instead of concurrently (A/B fallback; identical bytes)")
	fs.StringVar(&o.snapOut, "vfs-snapshot-out", "", "also write the metadata snapshot as a binary snapfile to this path (cmd/simulate reopens it with -vfs-snapshot)")
	fs.StringVar(&o.preset, "preset", "", "scale preset; \"spider\" streams a Spider II-scale namespace (1M users, 10M+ files) straight into a snapfile, bounded memory, no snapshot TSV")
	fs.StringVar(&o.fromIN2P3, "from-in2p3", "", "adapt an IN2P3-style job accounting export (CSV/TSV, optionally .gz) into the output dataset")
	fs.StringVar(&o.zone, "in2p3-zone", workload.DefaultZone, "IANA time zone of the -from-in2p3 timestamps")
	fs.BoolVar(&o.lenient, "lenient", false, "with -from-in2p3, quarantine malformed records instead of failing")
	fs.StringVar(&o.fitOut, "fit", "", "with -from-in2p3, also fit the adapted trace and write the reconstruction model JSON here")
	fs.StringVar(&o.model, "model", "", "regenerate the output dataset from this reconstruction model JSON instead of synthesizing")
	fs.IntVar(&o.scale, "scale", 1, "with -model, clone each fitted user this many times")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "users" {
			o.usersSet = true
		}
	})
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

func (o *options) validate() error {
	if o.out == "" {
		return errors.New("-out must not be empty")
	}
	if o.users < 1 {
		return fmt.Errorf("-users must be >= 1, got %d", o.users)
	}
	if o.preset != "" && o.preset != "spider" {
		return fmt.Errorf("unknown -preset %q (only \"spider\")", o.preset)
	}
	sources := 0
	for _, set := range []bool{o.preset != "", o.fromIN2P3 != "", o.model != ""} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return errors.New("-preset, -from-in2p3, and -model are mutually exclusive")
	}
	if o.fitOut != "" && o.fromIN2P3 == "" {
		return errors.New("-fit requires -from-in2p3")
	}
	if o.scale != 1 && o.model == "" {
		return errors.New("-scale requires -model")
	}
	if o.scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", o.scale)
	}
	if o.lenient && o.fromIN2P3 == "" {
		return errors.New("-lenient requires -from-in2p3")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runSpider is the streamed preset path: the user table and empty
// activity traces go out as a normal (tiny) dataset directory, while
// the 10M+-file namespace streams straight from the generator into a
// snapfile — no snapshot TSV, no in-memory materialization. Replay it
// with: simulate -data <out> -vfs-snapshot <out>/fs.snap.
func runSpider(o *options, out io.Writer) error {
	cfg := synth.SpiderStream(o.seed)
	if o.usersSet {
		cfg.Users = o.users
	}
	ds := &trace.Dataset{Users: cfg.StreamUsers()}
	ds.Snapshot.Taken = cfg.Taken
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	snapPath := o.snapOut
	if snapPath == "" {
		snapPath = filepath.Join(o.out, "fs.snap")
	}
	w, err := vfs.NewSnapfileWriter(snapPath, cfg.Taken)
	if err != nil {
		return err
	}
	n, err := synth.StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	})
	if err != nil {
		_ = w.Abort()
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(out, "wrote %s: %d users; streamed %d snapshot files to snapfile %s\n",
			o.out, len(ds.Users), n, snapPath)
	}
	return nil
}

// runIN2P3 adapts a facility job-accounting export into a dataset and
// optionally fits the reconstruction model from it.
func runIN2P3(o *options, out io.Writer) error {
	ds, rep, err := workload.LoadIN2P3(o.fromIN2P3, workload.IN2P3Options{
		Zone: o.zone, Lenient: o.lenient, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	if len(rep.Errors) > 0 && !o.quiet {
		fmt.Fprintf(out, "quarantined %d of %d records from %s (first: %s)\n",
			len(rep.Errors), rep.Lines, o.fromIN2P3, rep.Errors[0].Reason)
	}
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	if o.snapOut != "" {
		if err := vfs.WriteSnapfileFromSnapshot(o.snapOut, &ds.Snapshot); err != nil {
			return err
		}
	}
	if o.fitOut != "" {
		m, err := workload.Fit(ds)
		if err != nil {
			return err
		}
		m.Source = o.fromIN2P3
		if err := workload.SaveModel(o.fitOut, m); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Fprintf(out, "fitted %d-user model to %s\n", len(m.Users), o.fitOut)
		}
	}
	if !o.quiet {
		fmt.Fprintf(out, "wrote %s: %d users, %d jobs, %d accesses, %d snapshot files (%.2f GB)\n",
			o.out, len(ds.Users), len(ds.Jobs), len(ds.Accesses),
			len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e9)
	}
	return nil
}

// runModel regenerates a trace from a fitted reconstruction model.
// With -vfs-snapshot-out the snapshot skips the dataset entirely and
// streams into a snapfile — the bounded-memory path for big -scale
// runs; cmd/simulate reopens it with -vfs-snapshot.
func runModel(o *options, out io.Writer) error {
	m, err := workload.LoadModel(o.model)
	if err != nil {
		return err
	}
	cfg := workload.RegenConfig{Scale: o.scale, Seed: o.seed, SkipSnapshot: o.snapOut != ""}
	ds, err := workload.Regen(m, cfg)
	if err != nil {
		return err
	}
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	streamed := 0
	if o.snapOut != "" {
		w, err := vfs.NewSnapfileWriter(o.snapOut, m.Taken)
		if err != nil {
			return err
		}
		streamed, err = workload.StreamSnapshot(m, cfg, func(e trace.SnapshotEntry) error {
			return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
		})
		if err != nil {
			_ = w.Abort()
			return err
		}
		if err := w.Finish(); err != nil {
			return err
		}
	}
	if !o.quiet {
		fmt.Fprintf(out, "regenerated %s at %dx: %d users, %d jobs, %d accesses",
			o.out, o.scale, len(ds.Users), len(ds.Jobs), len(ds.Accesses))
		if o.snapOut != "" {
			fmt.Fprintf(out, "; streamed %d snapshot files to snapfile %s", streamed, o.snapOut)
		} else {
			fmt.Fprintf(out, ", %d snapshot files (%.2f GB)",
				len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e9)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func run(o *options, out io.Writer) error {
	if o.preset == "spider" {
		return runSpider(o, out)
	}
	if o.fromIN2P3 != "" {
		return runIN2P3(o, out)
	}
	if o.model != "" {
		return runModel(o, out)
	}
	ds, err := synth.Generate(synth.Config{Seed: o.seed, Users: o.users})
	if err != nil {
		return err
	}
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	if o.snapOut != "" {
		if err := vfs.WriteSnapfileFromSnapshot(o.snapOut, &ds.Snapshot); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Fprintf(out, "wrote snapfile %s\n", o.snapOut)
		}
	}
	if !o.quiet {
		fmt.Fprintf(out,
			"wrote %s: %d users, %d jobs, %d accesses, %d publications, %d snapshot files (%.2f TB)\n",
			o.out, len(ds.Users), len(ds.Jobs), len(ds.Accesses), len(ds.Publications),
			len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e12)
	}
	return nil
}
