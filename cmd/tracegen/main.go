// Command tracegen generates a synthetic OLCF-like trace dataset —
// user list, job scheduler log, application (file access) log,
// publication list, and reference metadata snapshot — into a
// directory consumable by cmd/activedr and cmd/simulate.
//
// -preset spider streams a Spider II-scale namespace (a million
// users, over ten million files) directly into a binary snapfile in
// bounded memory, skipping the snapshot TSV entirely; cmd/simulate
// reopens it with -vfs-snapshot.
//
// Usage:
//
//	tracegen -out ./data -users 2000 -seed 42
//	tracegen -out ./data -preset spider
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"activedr/internal/synth"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// options carries tracegen's flags after validation.
type options struct {
	out        string
	users      int
	seed       uint64
	quiet      bool
	sequential bool
	snapOut    string
	preset     string
	usersSet   bool
}

// parseFlags binds the flag set to an options struct and validates
// it; errors come back to the caller so tests can table-drive
// rejection without exiting the process.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.out, "out", "data", "output directory")
	fs.IntVar(&o.users, "users", 2000, "number of users")
	fs.Uint64Var(&o.seed, "seed", 0, "random seed (0 = built-in default)")
	fs.BoolVar(&o.quiet, "q", false, "suppress the summary")
	fs.BoolVar(&o.sequential, "sequential", false, "write trace files one at a time instead of concurrently (A/B fallback; identical bytes)")
	fs.StringVar(&o.snapOut, "vfs-snapshot-out", "", "also write the metadata snapshot as a binary snapfile to this path (cmd/simulate reopens it with -vfs-snapshot)")
	fs.StringVar(&o.preset, "preset", "", "scale preset; \"spider\" streams a Spider II-scale namespace (1M users, 10M+ files) straight into a snapfile, bounded memory, no snapshot TSV")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "users" {
			o.usersSet = true
		}
	})
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

func (o *options) validate() error {
	if o.out == "" {
		return errors.New("-out must not be empty")
	}
	if o.users < 1 {
		return fmt.Errorf("-users must be >= 1, got %d", o.users)
	}
	if o.preset != "" && o.preset != "spider" {
		return fmt.Errorf("unknown -preset %q (only \"spider\")", o.preset)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runSpider is the streamed preset path: the user table and empty
// activity traces go out as a normal (tiny) dataset directory, while
// the 10M+-file namespace streams straight from the generator into a
// snapfile — no snapshot TSV, no in-memory materialization. Replay it
// with: simulate -data <out> -vfs-snapshot <out>/fs.snap.
func runSpider(o *options, out io.Writer) error {
	cfg := synth.SpiderStream(o.seed)
	if o.usersSet {
		cfg.Users = o.users
	}
	ds := &trace.Dataset{Users: cfg.StreamUsers()}
	ds.Snapshot.Taken = cfg.Taken
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	snapPath := o.snapOut
	if snapPath == "" {
		snapPath = filepath.Join(o.out, "fs.snap")
	}
	w, err := vfs.NewSnapfileWriter(snapPath, cfg.Taken)
	if err != nil {
		return err
	}
	n, err := synth.StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	})
	if err != nil {
		_ = w.Abort()
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(out, "wrote %s: %d users; streamed %d snapshot files to snapfile %s\n",
			o.out, len(ds.Users), n, snapPath)
	}
	return nil
}

func run(o *options, out io.Writer) error {
	if o.preset == "spider" {
		return runSpider(o, out)
	}
	ds, err := synth.Generate(synth.Config{Seed: o.seed, Users: o.users})
	if err != nil {
		return err
	}
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	if o.snapOut != "" {
		if err := vfs.WriteSnapfileFromSnapshot(o.snapOut, &ds.Snapshot); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Fprintf(out, "wrote snapfile %s\n", o.snapOut)
		}
	}
	if !o.quiet {
		fmt.Fprintf(out,
			"wrote %s: %d users, %d jobs, %d accesses, %d publications, %d snapshot files (%.2f TB)\n",
			o.out, len(ds.Users), len(ds.Jobs), len(ds.Accesses), len(ds.Publications),
			len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e12)
	}
	return nil
}
