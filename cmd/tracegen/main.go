// Command tracegen generates a synthetic OLCF-like trace dataset —
// user list, job scheduler log, application (file access) log,
// publication list, and reference metadata snapshot — into a
// directory consumable by cmd/activedr and cmd/simulate.
//
// Usage:
//
//	tracegen -out ./data -users 2000 -seed 42
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"activedr/internal/synth"
	"activedr/internal/trace"
)

// options carries tracegen's flags after validation.
type options struct {
	out        string
	users      int
	seed       uint64
	quiet      bool
	sequential bool
}

// parseFlags binds the flag set to an options struct and validates
// it; errors come back to the caller so tests can table-drive
// rejection without exiting the process.
func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.out, "out", "data", "output directory")
	fs.IntVar(&o.users, "users", 2000, "number of users")
	fs.Uint64Var(&o.seed, "seed", 0, "random seed (0 = built-in default)")
	fs.BoolVar(&o.quiet, "q", false, "suppress the summary")
	fs.BoolVar(&o.sequential, "sequential", false, "write trace files one at a time instead of concurrently (A/B fallback; identical bytes)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

func (o *options) validate() error {
	if o.out == "" {
		return errors.New("-out must not be empty")
	}
	if o.users < 1 {
		return fmt.Errorf("-users must be >= 1, got %d", o.users)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(o *options, out io.Writer) error {
	ds, err := synth.Generate(synth.Config{Seed: o.seed, Users: o.users})
	if err != nil {
		return err
	}
	if err := trace.WriteDatasetWith(o.out, ds, trace.WriteOptions{Sequential: o.sequential}); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(out,
			"wrote %s: %d users, %d jobs, %d accesses, %d publications, %d snapshot files (%.2f TB)\n",
			o.out, len(ds.Users), len(ds.Jobs), len(ds.Accesses), len(ds.Publications),
			len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e12)
	}
	return nil
}
