// Command tracegen generates a synthetic OLCF-like trace dataset —
// user list, job scheduler log, application (file access) log,
// publication list, and reference metadata snapshot — into a
// directory consumable by cmd/activedr and cmd/simulate.
//
// Usage:
//
//	tracegen -out ./data -users 2000 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"activedr/internal/synth"
	"activedr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		out        = flag.String("out", "data", "output directory")
		users      = flag.Int("users", 2000, "number of users")
		seed       = flag.Uint64("seed", 0, "random seed (0 = built-in default)")
		quiet      = flag.Bool("q", false, "suppress the summary")
		sequential = flag.Bool("sequential", false, "write trace files one at a time instead of concurrently (A/B fallback; identical bytes)")
	)
	flag.Parse()
	ds, err := synth.Generate(synth.Config{Seed: *seed, Users: *users})
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteDatasetWith(*out, ds, trace.WriteOptions{Sequential: *sequential}); err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stdout,
			"wrote %s: %d users, %d jobs, %d accesses, %d publications, %d snapshot files (%.2f TB)\n",
			*out, len(ds.Users), len(ds.Jobs), len(ds.Accesses), len(ds.Publications),
			len(ds.Snapshot.Entries), float64(ds.Snapshot.TotalBytes())/1e12)
	}
}
