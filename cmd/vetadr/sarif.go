package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"activedr/internal/lint"
)

// SARIF 2.1.0 rendering, the minimum profile GitHub code scanning
// ingests: one run, the rule catalogue in the driver, one result per
// diagnostic with a repo-relative location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders findings as one SARIF run. root anchors the
// repo-relative artifact URIs.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, findings []lint.Diagnostic, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, d := range findings {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{d.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(d.File, root), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "vetadr", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&log)
}

// relPath renders path relative to root with forward slashes (SARIF
// URIs), falling back to the input when it is not under root.
func relPath(path, root string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
