// Command vetadr runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns and fails on any
// finding. It mechanically enforces the invariants replayable
// emulation depends on; see DESIGN.md §9 for the rule catalogue and
// the //lint:allow escape hatch.
//
// Usage:
//
//	vetadr [-json] [-rules nondeterminism,maporder,...] [patterns]
//
// Patterns default to ./... resolved against the enclosing module.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"activedr/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		rules   = flag.String("rules", "", "comma-separated rule subset (default: all)")
		list    = flag.Bool("list", false, "list available rules and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-26s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fatalf("unknown rule %q (try -list)", r)
		}
		analyzers = picked
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}

	var findings []lint.Diagnostic
	for _, pkg := range pkgs {
		findings = append(findings, lint.Check(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "vetadr: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vetadr: "+format+"\n", args...)
	os.Exit(2)
}
