// Command vetadr runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns and fails on any
// finding. It mechanically enforces the invariants replayable
// emulation depends on; see DESIGN.md §9 and §14 for the rule
// catalogue and the //lint:allow escape hatch.
//
// Usage:
//
//	vetadr [-json|-sarif] [-rules nondeterminism,maporder,...] [patterns]
//	vetadr -list [-json]
//	vetadr -suppressions [patterns]
//
// Patterns default to ./... resolved against the enclosing module.
// -suppressions lists every //lint:allow directive in the tree and
// fails on stale rules or empty reasons. Exit status: 0 clean, 1
// findings (or bad suppressions), 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"activedr/internal/lint"
)

// options carries every flag; validate fail-fasts before any package
// loading starts.
type options struct {
	jsonOut      bool
	sarifOut     bool
	rules        string
	list         bool
	suppressions bool
}

func parseFlags() *options {
	o := &options{}
	flag.BoolVar(&o.jsonOut, "json", false, "emit findings (or -list rules) as a JSON array on stdout")
	flag.BoolVar(&o.sarifOut, "sarif", false, "emit findings as SARIF 2.1.0 on stdout (for CI annotation)")
	flag.StringVar(&o.rules, "rules", "", "comma-separated rule subset (default: all)")
	flag.BoolVar(&o.list, "list", false, "list available rules and exit")
	flag.BoolVar(&o.suppressions, "suppressions", false, "audit //lint:allow directives: list all, fail on stale rule or empty reason")
	flag.Parse()
	return o
}

func (o *options) validate() error {
	if o.rules != "" {
		known := make(map[string]bool)
		for _, n := range lint.AnalyzerNames() {
			known[n] = true
		}
		for _, r := range strings.Split(o.rules, ",") {
			if !known[strings.TrimSpace(r)] {
				return fmt.Errorf("unknown rule %q in -rules (try -list)", strings.TrimSpace(r))
			}
		}
	}
	if o.jsonOut && o.sarifOut {
		return fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	return nil
}

func main() {
	o := parseFlags()
	if err := o.validate(); err != nil {
		fatalf("%v", err)
	}

	analyzers := lint.Analyzers()
	if o.list {
		if o.jsonOut {
			type rule struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			}
			var rs []rule
			for _, a := range analyzers {
				rs = append(rs, rule{a.Name, a.Doc})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rs); err != nil {
				fatalf("%v", err)
			}
			return
		}
		for _, a := range analyzers {
			fmt.Printf("%-26s %s\n", a.Name, a.Doc)
		}
		return
	}
	if o.rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(o.rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
			}
		}
		analyzers = picked
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}

	if o.suppressions {
		os.Exit(auditSuppressions(pkgs, loader.ModuleRoot))
	}

	var findings []lint.Diagnostic
	for _, pkg := range pkgs {
		findings = append(findings, lint.Check(pkg, analyzers)...)
	}

	switch {
	case o.sarifOut:
		if err := writeSARIF(os.Stdout, analyzers, findings, loader.ModuleRoot); err != nil {
			fatalf("%v", err)
		}
	case o.jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	default:
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		if !o.jsonOut && !o.sarifOut {
			fmt.Fprintf(os.Stderr, "vetadr: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}

// auditSuppressions lists every //lint:allow directive and returns
// the exit code: 1 when any directive names a dead rule or carries no
// reason, 0 otherwise.
func auditSuppressions(pkgs []*lint.Package, root string) int {
	bad := 0
	total := 0
	for _, pkg := range pkgs {
		for _, s := range lint.Suppressions(pkg) {
			total++
			problem := ""
			switch {
			case s.Rule == "":
				problem = "MISSING RULE"
			case !s.KnownRule:
				problem = "STALE RULE"
			case s.Reason == "":
				problem = "EMPTY REASON"
			}
			loc := fmt.Sprintf("%s:%d", relPath(s.File, root), s.Line)
			if problem != "" {
				bad++
				fmt.Printf("%s\t%s\t%s\t%s\n", loc, s.Rule, problem, s.Reason)
				continue
			}
			fmt.Printf("%s\t%s\tok\t%s\n", loc, s.Rule, s.Reason)
		}
	}
	fmt.Fprintf(os.Stderr, "vetadr: %d suppression(s), %d bad\n", total, bad)
	if bad > 0 {
		return 1
	}
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vetadr: "+format+"\n", args...)
	os.Exit(2)
}
