package main

import (
	"io"
	"strings"
	"testing"

	"activedr/internal/experiments"
)

func smallSuite(t *testing.T) *experiments.Suite {
	t.Helper()
	s, err := experiments.NewSyntheticSuite(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRenderEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full year several times")
	}
	s := smallSuite(t)
	for _, fig := range []string{"t1", "1", "5", "6", "7", "8", "9", "10", "11", "12"} {
		var b strings.Builder
		if err := render(s, fig, &b, 2); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if b.Len() == 0 {
			t.Fatalf("fig %s produced no output", fig)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	s := smallSuite(t)
	if err := render(s, "99", io.Discard, 2); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
