package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"activedr/internal/experiments"
	"activedr/internal/obs"
)

func smallSuite(t *testing.T) *experiments.Suite {
	t.Helper()
	s, err := experiments.NewSyntheticSuite(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRenderEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full year several times")
	}
	s := smallSuite(t)
	for _, fig := range []string{"t1", "1", "5", "6", "7", "8", "9", "10", "11", "12"} {
		var b strings.Builder
		if err := render(s, fig, &b, 2); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if b.Len() == 0 {
			t.Fatalf("fig %s produced no output", fig)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	s := smallSuite(t)
	if err := render(s, "99", io.Discard, 2); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// eventStream builds a small two-policy telemetry stream: per policy,
// misses before each trigger, two triggers, one audit record, and a
// trailing miss after the final trigger.
func eventStream(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := obs.NewEventWriter(&buf)
	for _, pol := range []string{"FLT-90d", "ActiveDR-90d"} {
		w.Miss(&obs.MissEvent{Kind: obs.KindMiss, Policy: pol, Path: "/a", Bytes: 100})
		w.Miss(&obs.MissEvent{Kind: obs.KindMiss, Policy: pol, Path: "/b", Bytes: 200})
		w.Trigger(&obs.TriggerEvent{Kind: obs.KindTrigger, Policy: pol, Seq: 1,
			Date: "2016-01-08", TargetBytes: 10 << 30, PurgedFiles: 40, PurgedBytes: 9 << 30,
			TargetReached: true})
		w.Audit(&obs.AuditEvent{Kind: obs.KindAudit, Policy: pol, Seq: 2,
			Action: obs.ActionPurge, Path: "/c", Bytes: 300})
		w.Trigger(&obs.TriggerEvent{Kind: obs.KindTrigger, Policy: pol, Seq: 2,
			Date: "2016-01-15", TargetBytes: 10 << 30, PurgedFiles: 25, PurgedBytes: 5 << 30,
			FailedFiles: 3, RetroPasses: 1, RetroFiles: 7, Incomplete: true})
		w.Miss(&obs.MissEvent{Kind: obs.KindMiss, Policy: pol, Path: "/d", Bytes: 50})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRenderEvents(t *testing.T) {
	var b strings.Builder
	if err := renderEvents(eventStream(t), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"FLT-90d: 2 purge triggers",
		"ActiveDR-90d: 2 purge triggers",
		"2016-01-08",
		"2016-01-15",
		"(+1 misses after the final trigger)",
		"I!r", // trigger 2: interrupted, target missed, retro pass ran
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table lacks %q:\n%s", want, out)
		}
	}
}

func TestRenderEventsRejectsGarbage(t *testing.T) {
	if err := renderEvents(strings.NewReader("not json\n"), io.Discard); err == nil {
		t.Fatal("garbage stream accepted")
	}
	if err := renderEvents(strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("empty stream accepted")
	}
}
