// Command report regenerates the paper's tables and figures on the
// synthetic dataset (or a dataset directory) and writes the text
// renditions to stdout or a file.
//
// Usage:
//
//	report                 # all figures, built-in synthetic dataset
//	report -fig 6          # one figure
//	report -data ./data    # use a tracegen dataset
//	report -o results.txt  # write to a file
//	report -events e.jsonl # per-trigger summary of a telemetry stream
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"activedr/internal/experiments"
	"activedr/internal/profiling"
	"activedr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	var (
		data    = flag.String("data", "", "dataset directory (empty = generate synthetic)")
		users   = flag.Int("users", 2000, "synthetic user count (when -data is empty)")
		seed    = flag.Uint64("seed", 0, "synthetic seed (when -data is empty)")
		fig     = flag.String("fig", "all", "figure/table to render: all, t1, 1, 5, 6, 7, 8, 9, 10, 11, 12, ablation")
		out     = flag.String("o", "", "output file (empty = stdout)")
		ranks   = flag.Int("ranks", 4, "parallel ranks for the replay sweep and Figure 12")
		lenient = flag.Bool("lenient", false, "quarantine malformed trace lines instead of aborting")
		events  = flag.String("events", "", "render a per-trigger summary of this telemetry stream (from simulate -events-out) instead of figures")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if *events != "" {
		ef, err := os.Open(*events)
		if err != nil {
			log.Fatal(err)
		}
		defer ef.Close()
		if err := renderEvents(ef, w); err != nil {
			log.Fatal(err)
		}
		return
	}

	var suite *experiments.Suite
	if *data != "" {
		ds, rep, err := trace.LoadDatasetWith(*data, trace.ReadOptions{Lenient: *lenient})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Clean() {
			log.Printf("lenient load: %d malformed lines quarantined\n%s", rep.Errors(), rep.Summary())
		}
		suite = experiments.NewSuite(ds)
	} else {
		s, err := experiments.NewSyntheticSuite(*users, *seed)
		if err != nil {
			log.Fatal(err)
		}
		suite = s
	}

	if err := render(suite, *fig, w, *ranks); err != nil {
		log.Fatal(err)
	}
}

func render(s *experiments.Suite, fig string, w io.Writer, ranks int) error {
	switch fig {
	case "all":
		return s.RunAll(w, ranks)
	case "t1":
		s.Table1().Render(w)
	case "1":
		r, err := s.Figure1()
		if err != nil {
			return err
		}
		r.Render(w)
	case "5":
		r, err := s.Figure5()
		if err != nil {
			return err
		}
		r.Render(w)
	case "6":
		r, err := s.Figure6()
		if err != nil {
			return err
		}
		r.Render(w)
	case "7":
		r, err := s.Figure7()
		if err != nil {
			return err
		}
		r.Render(w)
	case "8":
		r, err := s.Figure8()
		if err != nil {
			return err
		}
		r.Render(w)
	case "9", "10", "11":
		sweep, err := s.RetentionSweep()
		if err != nil {
			return err
		}
		switch fig {
		case "9":
			sweep.Figure9(w)
		case "10":
			sweep.Figure10(w)
		case "11":
			sweep.Figure11(w)
		}
	case "12":
		r, err := s.Figure12(ranks)
		if err != nil {
			return err
		}
		r.Render(w)
	case "ablation":
		r, err := s.Ablation()
		if err != nil {
			return err
		}
		r.Render(w)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
