// Command report regenerates the paper's tables and figures on the
// synthetic dataset (or a dataset directory) and writes the text
// renditions to stdout or a file.
//
// Usage:
//
//	report                 # all figures, built-in synthetic dataset
//	report -fig 6          # one figure
//	report -data ./data    # use a tracegen dataset
//	report -o results.txt  # write to a file
//	report -data ./real -fig workload  # real-trace reconstruction scenario
//	report -events e.jsonl # per-trigger summary of a telemetry stream
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"activedr/internal/experiments"
	"activedr/internal/profiling"
	"activedr/internal/trace"
)

// figNames are the renderable figure/table selectors; validate checks
// -fig against them before any dataset work starts.
var figNames = map[string]bool{
	"all": true, "t1": true, "1": true, "5": true, "6": true, "7": true,
	"8": true, "9": true, "10": true, "11": true, "12": true, "ablation": true,
	"workload": true,
}

// options carries every flag; validate fail-fasts on garbage before
// the (potentially minutes-long) dataset generation starts.
type options struct {
	data    string
	users   int
	seed    uint64
	fig     string
	out     string
	ranks   int
	lenient bool
	events  string

	cpuProfile string
	memProfile string
}

func parseFlags() *options {
	o := &options{}
	flag.StringVar(&o.data, "data", "", "dataset directory (empty = generate synthetic)")
	flag.IntVar(&o.users, "users", 2000, "synthetic user count (when -data is empty)")
	flag.Uint64Var(&o.seed, "seed", 0, "synthetic seed (when -data is empty)")
	flag.StringVar(&o.fig, "fig", "all", "figure/table to render: all, t1, 1, 5, 6, 7, 8, 9, 10, 11, 12, ablation, workload")
	flag.StringVar(&o.out, "o", "", "output file (empty = stdout)")
	flag.IntVar(&o.ranks, "ranks", 4, "parallel ranks for the replay sweep and Figure 12")
	flag.BoolVar(&o.lenient, "lenient", false, "quarantine malformed trace lines instead of aborting")
	flag.StringVar(&o.events, "events", "", "render a per-trigger summary of this telemetry stream (from simulate -events-out) instead of figures")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the figure runs to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	return o
}

func (o *options) validate() error {
	if !figNames[o.fig] {
		return fmt.Errorf("unknown -fig %q (want all, t1, 1, 5, 6, 7, 8, 9, 10, 11, 12, ablation, or workload)", o.fig)
	}
	if o.users < 1 {
		return fmt.Errorf("-users must be >= 1, got %d", o.users)
	}
	if o.ranks < 1 {
		return fmt.Errorf("-ranks must be >= 1, got %d", o.ranks)
	}
	if o.data != "" {
		if _, err := os.Stat(o.data); err != nil {
			return fmt.Errorf("-data: %w", err)
		}
	}
	if o.events != "" {
		if _, err := os.Stat(o.events); err != nil {
			return fmt.Errorf("-events: %w", err)
		}
	}
	// Output paths fail fast on a missing parent directory rather
	// than after the figures have been computed.
	for _, p := range []struct{ flag, path string }{
		{"-o", o.out}, {"-cpuprofile", o.cpuProfile}, {"-memprofile", o.memProfile},
	} {
		if p.path == "" {
			continue
		}
		dir := filepath.Dir(p.path)
		if _, err := os.Stat(dir); err != nil {
			return fmt.Errorf("%s: parent directory: %w", p.flag, err)
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	o := parseFlags()
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := profiling.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if o.events != "" {
		ef, err := os.Open(o.events)
		if err != nil {
			log.Fatal(err)
		}
		defer ef.Close()
		if err := renderEvents(ef, w); err != nil {
			log.Fatal(err)
		}
		return
	}

	var suite *experiments.Suite
	if o.data != "" {
		ds, rep, err := trace.LoadDatasetWith(o.data, trace.ReadOptions{Lenient: o.lenient})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Clean() {
			log.Printf("lenient load: %d malformed lines quarantined\n%s", rep.Errors(), rep.Summary())
		}
		suite = experiments.NewSuite(ds)
	} else {
		s, err := experiments.NewSyntheticSuite(o.users, o.seed)
		if err != nil {
			log.Fatal(err)
		}
		suite = s
	}

	if err := render(suite, o.fig, w, o.ranks); err != nil {
		log.Fatal(err)
	}
}

func render(s *experiments.Suite, fig string, w io.Writer, ranks int) error {
	switch fig {
	case "all":
		return s.RunAll(w, ranks)
	case "t1":
		s.Table1().Render(w)
	case "1":
		r, err := s.Figure1()
		if err != nil {
			return err
		}
		r.Render(w)
	case "5":
		r, err := s.Figure5()
		if err != nil {
			return err
		}
		r.Render(w)
	case "6":
		r, err := s.Figure6()
		if err != nil {
			return err
		}
		r.Render(w)
	case "7":
		r, err := s.Figure7()
		if err != nil {
			return err
		}
		r.Render(w)
	case "8":
		r, err := s.Figure8()
		if err != nil {
			return err
		}
		r.Render(w)
	case "9", "10", "11":
		sweep, err := s.RetentionSweep()
		if err != nil {
			return err
		}
		switch fig {
		case "9":
			sweep.Figure9(w)
		case "10":
			sweep.Figure10(w)
		case "11":
			sweep.Figure11(w)
		}
	case "12":
		r, err := s.Figure12(ranks)
		if err != nil {
			return err
		}
		r.Render(w)
	case "ablation":
		r, err := s.Ablation()
		if err != nil {
			return err
		}
		r.Render(w)
	case "workload":
		// The upscale replays go through the out-of-core snapfile path;
		// the snapfiles themselves are scratch.
		snapDir, err := os.MkdirTemp("", "report-workload-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(snapDir)
		r, err := s.WorkloadScenario(experiments.WorkloadScenarioConfig{SnapDir: snapDir})
		if err != nil {
			return err
		}
		r.Render(w)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
