package main

// Rendering for -events: a per-trigger summary table distilled from
// the JSONL telemetry stream cmd/simulate -events-out writes. The
// stream interleaves trigger, miss, and audit records (obs package
// encoding); the table groups them by policy and charges each miss
// and audited decision to the trigger window it arrived in.

import (
	"fmt"
	"io"
	"text/tabwriter"

	"activedr/internal/obs"
)

// triggerRow is one rendered trigger plus the stream records charged
// to its window (the misses and audits seen since the prior trigger).
type triggerRow struct {
	ev     *obs.TriggerEvent
	misses int64
	audits int64
}

// policyAgg accumulates one policy's slice of the event stream.
type policyAgg struct {
	policy  string
	rows    []triggerRow
	pending triggerRow // misses/audits since the last trigger
}

// renderEvents decodes one telemetry stream and writes a per-trigger
// table per policy, in order of each policy's first appearance.
func renderEvents(r io.Reader, w io.Writer) error {
	aggs := make(map[string]*policyAgg)
	var order []*policyAgg
	agg := func(policy string) *policyAgg {
		a, ok := aggs[policy]
		if !ok {
			a = &policyAgg{policy: policy}
			aggs[policy] = a
			order = append(order, a)
		}
		return a
	}
	d := obs.NewDecoder(r)
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch ev := ev.(type) {
		case *obs.TriggerEvent:
			a := agg(ev.Policy)
			row := a.pending
			row.ev = ev
			a.rows = append(a.rows, row)
			a.pending = triggerRow{}
		case *obs.MissEvent:
			agg(ev.Policy).pending.misses++
		case *obs.AuditEvent:
			agg(ev.Policy).pending.audits++
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no telemetry events in the stream")
	}
	for _, a := range order {
		if err := a.render(w); err != nil {
			return err
		}
	}
	return nil
}

const gib = float64(1 << 30)

func (a *policyAgg) render(w io.Writer) error {
	fmt.Fprintf(w, "\n%s: %d purge triggers\n", a.policy, len(a.rows))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "trig\tdate\ttarget GiB\tpurged\tfreed GiB\tfreed%\tfailed\texempt\tretro\tmisses\taudits\tflags\t")
	var tot triggerRow
	var totPurged, totBytes, totFailed, totExempt, totRetro int64
	for _, row := range a.rows {
		ev := row.ev
		freedPct := 0.0
		if ev.TargetBytes > 0 {
			freedPct = 100 * float64(ev.PurgedBytes) / float64(ev.TargetBytes)
		}
		flags := ""
		if ev.Incomplete {
			flags += "I" // scan interrupted
		}
		if !ev.TargetReached {
			flags += "!" // trigger missed its byte target
		}
		if ev.RetroPasses > 0 {
			flags += "r"
		}
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%d\t%.1f\t%.0f%%\t%d\t%d\t%d\t%d\t%d\t%s\t\n",
			ev.Seq, ev.Date, float64(ev.TargetBytes)/gib, ev.PurgedFiles,
			float64(ev.PurgedBytes)/gib, freedPct, ev.FailedFiles, ev.Exempt,
			ev.RetroFiles, row.misses, row.audits, flags)
		tot.misses += row.misses
		tot.audits += row.audits
		totPurged += ev.PurgedFiles
		totBytes += ev.PurgedBytes
		totFailed += ev.FailedFiles
		totExempt += ev.Exempt
		totRetro += ev.RetroFiles
	}
	fmt.Fprintf(tw, "total\t\t\t%d\t%.1f\t\t%d\t%d\t%d\t%d\t%d\t\t\n",
		totPurged, float64(totBytes)/gib, totFailed, totExempt, totRetro, tot.misses, tot.audits)
	if err := tw.Flush(); err != nil {
		return err
	}
	if a.pending.misses > 0 {
		fmt.Fprintf(w, "(+%d misses after the final trigger)\n", a.pending.misses)
	}
	return nil
}
