package main

import (
	"math"
	"strings"
	"testing"
)

// TestAddDerivedSpeedup pins the derived sweep metric: medians across
// -count repetitions, ratio sequential/multiplexed, and no phantom
// entry when either side is missing.
func TestAddDerivedSpeedup(t *testing.T) {
	mk := func(name string, ns float64) Benchmark {
		return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
	}
	in := []Benchmark{
		mk("BenchmarkSweep4Sequential-1", 350e6),
		mk("BenchmarkSweep4Sequential-1", 300e6),
		mk("BenchmarkSweep4Sequential-1", 330e6),
		mk("BenchmarkSweep4Multiplexed-1", 100e6),
		mk("BenchmarkSweep4Multiplexed-1", 130e6),
		mk("BenchmarkSweep4Multiplexed-1", 110e6),
		mk("BenchmarkReplayBare-1", 80e6), // unrelated, ignored
	}
	out := addDerived(in)
	if len(out) != len(in)+1 {
		t.Fatalf("addDerived appended %d entries, want 1", len(out)-len(in))
	}
	d := out[len(out)-1]
	if d.Name != "Sweep4Speedup" {
		t.Fatalf("derived name = %q", d.Name)
	}
	want := 330e6 / 110e6 // ratio of medians
	if got := d.Metrics["x"]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("speedup = %v, want %v", got, want)
	}

	for _, partial := range [][]Benchmark{
		{mk("BenchmarkSweep4Sequential-1", 350e6)},
		{mk("BenchmarkSweep4Multiplexed-1", 100e6)},
		nil,
	} {
		if out := addDerived(partial); len(out) != len(partial) {
			t.Fatalf("addDerived(%v) fabricated a speedup without both sides", partial)
		}
	}
}

// TestParseBenchOutputSweepLines makes sure the parser keeps custom
// units (misses, policies/pass) the sweep benchmarks report, so the
// derived metric sees its inputs.
func TestParseBenchOutputSweepLines(t *testing.T) {
	out := `goos: linux
BenchmarkSweep4Sequential-1    6   340123456 ns/op   48842 misses   24e6 B/op   100000 allocs/op
BenchmarkSweep4Multiplexed-1   6   110123456 ns/op   48842 misses   4 policies/pass
PASS
`
	benches, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	if benches[0].Metrics["misses"] != 48842 {
		t.Fatalf("misses metric lost: %v", benches[0].Metrics)
	}
	if benches[1].Metrics["policies/pass"] != 4 {
		t.Fatalf("policies/pass metric lost: %v", benches[1].Metrics)
	}
	derived := addDerived(benches)
	if derived[len(derived)-1].Name != "Sweep4Speedup" {
		t.Fatal("no Sweep4Speedup derived from parsed pair")
	}
}
