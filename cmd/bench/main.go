// Command bench runs the repository's benchmark suite and records the
// parsed results in a BENCH_<date>.json trajectory file, so perf
// changes across commits leave a machine-readable trail instead of
// numbers pasted into commit messages.
//
// Each invocation appends one run (timestamp, toolchain, the go test
// arguments, and every parsed benchmark with its metrics) to the
// day's file, creating it when absent. See README.md ("Benchmark
// trajectories") for the format.
//
// Usage:
//
//	bench                                   # full suite, default time
//	bench -bench 'Replay' -count 3          # replay benches only
//	bench -benchtime 1x -label smoke        # CI smoke run
//	bench -o BENCH_baseline.json            # explicit output file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line: the benchmark's name (with its
// -cpu suffix), the iteration count, and every reported metric keyed
// by unit (ns/op, B/op, allocs/op, plus custom units like misses).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Run is one bench invocation's worth of results.
type Run struct {
	Timestamp  string      `json:"timestamp"`
	Label      string      `json:"label,omitempty"`
	Go         string      `json:"go"`
	Args       []string    `json:"args"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Trajectory is the top-level BENCH_<date>.json document: every run
// recorded that day, oldest first.
type Trajectory struct {
	Runs []Run `json:"runs"`
}

// options carries every flag; validate fail-fasts before the (long)
// benchmark run starts.
type options struct {
	bench     string
	benchtime string
	count     int
	short     bool
	pkgs      string
	label     string
	out       string
	input     string
	date      string
}

func parseFlags() *options {
	o := &options{}
	flag.StringVar(&o.bench, "bench", ".", "benchmark pattern passed to go test -bench")
	flag.StringVar(&o.benchtime, "benchtime", "", "passed to go test -benchtime (empty = go default)")
	flag.IntVar(&o.count, "count", 1, "passed to go test -count")
	flag.BoolVar(&o.short, "short", false, "pass -short (skips the million-file namespaces)")
	flag.StringVar(&o.pkgs, "pkgs", "./...", "comma-separated package patterns to benchmark")
	flag.StringVar(&o.label, "label", "", "free-form tag recorded with the run (e.g. before, after, smoke)") //lint:allow flagvalidate label is a free-form tag: every string is a valid value, there is nothing to range-check
	flag.StringVar(&o.out, "o", "", "output file (empty = BENCH_<date>.json in the working directory)")
	flag.StringVar(&o.input, "input", "", "record results from an existing go test -bench output file instead of running the suite")
	flag.StringVar(&o.date, "date", "", "run timestamp, RFC3339 or YYYY-MM-DD (default: current time); stamps the record and the default output name")
	flag.Parse()
	return o
}

func (o *options) validate() error {
	if _, err := regexp.Compile(o.bench); err != nil {
		return fmt.Errorf("-bench is not a valid pattern: %v", err)
	}
	if o.benchtime != "" && !benchtimeRe.MatchString(o.benchtime) {
		return fmt.Errorf("-benchtime must be a duration (10s) or an iteration count (100x), got %q", o.benchtime)
	}
	if o.count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", o.count)
	}
	if strings.TrimSpace(o.pkgs) == "" {
		return fmt.Errorf("-pkgs must name at least one package pattern")
	}
	if o.input != "" {
		if _, err := os.Stat(o.input); err != nil {
			return fmt.Errorf("-input: %w", err)
		}
	}
	if o.out != "" {
		if _, err := os.Stat(filepath.Dir(o.out)); err != nil {
			return fmt.Errorf("-o: parent directory: %w", err)
		}
	}
	if o.date != "" {
		if _, err := resolveDate(o.date); err != nil {
			return err
		}
	}
	return nil
}

// benchtimeRe mirrors go test's accepted -benchtime shapes: a
// Go duration or an explicit iteration count.
var benchtimeRe = regexp.MustCompile(`^([0-9]+(\.[0-9]+)?(ns|us|µs|ms|s|m|h))+$|^[0-9]+x$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	o := parseFlags()
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}

	// The wall clock is read here, at the CLI edge, and only when no
	// -date was given: everything below is a pure function of its
	// inputs, which keeps the tool honest under the nondeterminism
	// lint rule and lets tests pin the trajectory file name.
	now, err := resolveDate(o.date)
	if err != nil {
		log.Fatal(err)
	}

	if o.input != "" {
		f, err := os.Open(o.input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		benches, err := parseBenchOutput(f)
		if err != nil {
			log.Fatal(err)
		}
		record(o.out, Run{Label: o.label, Go: runtime.Version(),
			Args: []string{"-input", o.input}, Benchmarks: benches}, now)
		return
	}

	args := []string{"test", "-run=^$", "-bench", o.bench, "-benchmem", "-count", strconv.Itoa(o.count)}
	if o.benchtime != "" {
		args = append(args, "-benchtime", o.benchtime)
	}
	if o.short {
		args = append(args, "-short")
	}
	args = append(args, strings.Split(o.pkgs, ",")...)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	benches, perr := parseBenchOutput(io.TeeReader(stdout, os.Stdout))
	if err := cmd.Wait(); err != nil {
		log.Fatalf("go %s: %v", strings.Join(args, " "), err)
	}
	if perr != nil {
		log.Fatal(perr)
	}
	if len(benches) == 0 {
		log.Fatalf("no benchmarks matched %q", o.bench)
	}
	record(o.out, Run{Label: o.label, Go: runtime.Version(), Args: args, Benchmarks: benches}, now)
}

// resolveDate parses the -date flag, defaulting to the current time.
func resolveDate(s string) (time.Time, error) {
	if s == "" {
		return time.Now(), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("-date %q: want RFC3339 or YYYY-MM-DD", s)
	}
	return t, nil
}

// medianNsOp returns the median ns/op across every repetition of the
// named benchmark (names carry a -cpu suffix; -count adds lines, not
// names), or 0 when the benchmark is absent.
func medianNsOp(benches []Benchmark, name string) float64 {
	var vals []float64
	for _, b := range benches {
		base, _, _ := strings.Cut(b.Name, "-")
		if base != name {
			continue
		}
		if v, ok := b.Metrics["ns/op"]; ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// addDerived appends metrics that only exist as cross-benchmark
// ratios. Currently one: Sweep4Speedup, the 4-policies-per-pass
// speedup of the multiplexed replay over four dedicated ones (median
// sequential ns/op over median multiplexed ns/op), recorded whenever a
// run captures both sweep benchmarks.
func addDerived(benches []Benchmark) []Benchmark {
	seq := medianNsOp(benches, "BenchmarkSweep4Sequential")
	mux := medianNsOp(benches, "BenchmarkSweep4Multiplexed")
	if seq > 0 && mux > 0 {
		benches = append(benches, Benchmark{
			Name:       "Sweep4Speedup",
			Iterations: 1,
			Metrics:    map[string]float64{"x": seq / mux},
		})
	}
	return benches
}

// record appends one run to the trajectory file, stamped with now.
func record(path string, run Run, now time.Time) {
	run.Benchmarks = addDerived(run.Benchmarks)
	if len(run.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found")
	}
	run.Timestamp = now.Format(time.RFC3339)
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}
	traj, err := loadTrajectory(path)
	if err != nil {
		log.Fatal(err)
	}
	traj.Runs = append(traj.Runs, run)
	if err := writeTrajectory(path, traj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d benchmarks to %s (%d runs)\n", len(run.Benchmarks), path, len(traj.Runs))
}

// parseBenchOutput extracts result lines of the form
//
//	BenchmarkName-8  3  130101576 ns/op  6999 misses  14241594 B/op  77327 allocs/op
//
// into Benchmark values. Non-benchmark lines (headers, PASS/ok) are
// skipped.
func parseBenchOutput(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[f[i+1]] = v
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// loadTrajectory reads an existing trajectory file, or returns an
// empty one when the file does not exist yet.
func loadTrajectory(path string) (*Trajectory, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(blob, &t); err != nil {
		return nil, fmt.Errorf("%s: %w (move it aside to start a fresh trajectory)", path, err)
	}
	return &t, nil
}

func writeTrajectory(path string, t *Trajectory) error {
	blob, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
