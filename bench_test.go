// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the index), plus ablations of the
// design choices and micro-benchmarks of the hot substrates.
//
//	go test -bench=. -benchmem
//
// Figure benchmarks build a fresh Suite per iteration over a shared
// dataset, so each iteration measures the full regeneration cost;
// headline quantities are attached as custom metrics.
package activedr_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"activedr/internal/activeness"
	"activedr/internal/experiments"
	"activedr/internal/randx"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// benchUsers keeps full-year replays fast enough for -bench cycles
// while preserving the workload's shape.
const benchUsers = 400

var (
	benchOnce sync.Once
	benchDS   *trace.Dataset
	snapOnce  sync.Once
	snapPath  string
)

func benchDataset(b *testing.B) *trace.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := synth.Generate(synth.Config{Seed: 9, Users: benchUsers})
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	})
	return benchDS
}

func newSuite(b *testing.B) *experiments.Suite {
	return experiments.NewSuite(benchDataset(b))
}

// --- one benchmark per table/figure ---

func BenchmarkTable1(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		s.Table1().Render(io.Discard)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
		b.ReportMetric(float64(r.DaysOver5Pct), "days>5%")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
		b.ReportMetric(100*r.Cells[3].Matrix.Share(activeness.BothInactive), "inactive-%@90d")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
		b.ReportMetric(100*r.OverallReduction, "miss-reduction-%")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
		b.ReportMetric(100*r.Boxes[activeness.BothActive].Mean, "BA-mean-reduction-%")
	}
}

// BenchmarkFigure9 covers Figures 9–11 and Tables 4–6: they share the
// period-length sweep.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		sweep, err := s.RetentionSweep()
		if err != nil {
			b.Fatal(err)
		}
		sweep.Figure9(io.Discard)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		sweep, err := s.RetentionSweep()
		if err != nil {
			b.Fatal(err)
		}
		sweep.Figure10(io.Discard)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		sweep, err := s.RetentionSweep()
		if err != nil {
			b.Fatal(err)
		}
		sweep.Figure11(io.Discard)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r, err := s.Figure12(4)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// --- Figure 12 component benchmarks ---

// BenchmarkTraceLoad measures dataset parsing (Figure 12a).
func BenchmarkTraceLoad(b *testing.B) {
	ds := benchDataset(b)
	dir := filepath.Join(b.TempDir(), "data")
	if err := trace.WriteDataset(dir, ds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.LoadDataset(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// ingestDir lazily writes the benchmark dataset once for the load
// benchmarks below.
var (
	ingestOnce sync.Once
	ingestPath string
)

func ingestDataset(b *testing.B) string {
	b.Helper()
	ds := benchDataset(b)
	ingestOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ingest-bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.WriteDataset(dir, ds); err != nil {
			b.Fatal(err)
		}
		ingestPath = dir
	})
	return ingestPath
}

// benchLoadDataset measures full-dataset ingestion on one read path.
func benchLoadDataset(b *testing.B, opts trace.ReadOptions) {
	dir := ingestDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trace.LoadDatasetWith(dir, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadDataset measures the default pipelined ingestion: file
// fan-out, block-pipelined decoding, zero-allocation row parsing.
func BenchmarkLoadDataset(b *testing.B) {
	benchLoadDataset(b, trace.ReadOptions{})
}

// BenchmarkLoadDatasetSequential is the same load on the
// single-goroutine fallback path (ReadOptions.Sequential), the A/B
// baseline for the pipeline speedup.
func BenchmarkLoadDatasetSequential(b *testing.B) {
	benchLoadDataset(b, trace.ReadOptions{Sequential: true})
}

// benchWriteDataset measures full-dataset persistence on one write
// path.
func benchWriteDataset(b *testing.B, wopts trace.WriteOptions) {
	ds := benchDataset(b)
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteDatasetWith(filepath.Join(dir, "out"), ds, wopts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteDataset measures the default concurrent writers with
// strconv.Append row encoding.
func BenchmarkWriteDataset(b *testing.B) {
	benchWriteDataset(b, trace.WriteOptions{})
}

// BenchmarkWriteDatasetSequential is the same write one file at a
// time.
func BenchmarkWriteDatasetSequential(b *testing.B) {
	benchWriteDataset(b, trace.WriteOptions{Sequential: true})
}

// BenchmarkActivenessEval measures ranking the whole population
// (Figure 12b).
func BenchmarkActivenessEval(b *testing.B) {
	ds := benchDataset(b)
	ev := activeness.NewEvaluator(timeutil.Days(90))
	jt := ev.AddType("job", activeness.Operation)
	pt := ev.AddType("pub", activeness.Outcome)
	ev.RecordJobs(jt, ds.Jobs)
	ev.RecordPublications(pt, ds.Publications)
	tc := experiments.CaptureDate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateAll(len(ds.Users), tc)
	}
}

// BenchmarkPurgeDecision measures one full ActiveDR purge pass over
// the snapshot (Figure 12b).
func BenchmarkPurgeDecision(b *testing.B) {
	ds := benchDataset(b)
	base, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		b.Fatal(err)
	}
	ev := activeness.NewEvaluator(timeutil.Days(90))
	jt := ev.AddType("job", activeness.Operation)
	ev.RecordJobs(jt, ds.Jobs)
	ranks := ev.EvaluateAll(len(ds.Users), experiments.CaptureDate)
	adr, err := retention.NewActiveDR(retention.Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          base.TotalBytes(),
		TargetUtilization: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fsys := base.Clone()
		b.StartTimer()
		adr.Purge(fsys, ranks, experiments.CaptureDate)
	}
}

// BenchmarkSnapshotScan measures a full lexicographic namespace walk
// (Figure 12c/d).
func BenchmarkSnapshotScan(b *testing.B) {
	ds := benchDataset(b)
	fsys, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bytes int64
		fsys.Walk(func(_ string, m vfs.FileMeta) bool {
			bytes += m.Size
			return true
		})
		if bytes == 0 {
			b.Fatal("empty walk")
		}
	}
}

// --- full-year replay benchmarks (the headline hot path) ---

// replayPolicy replays the whole evaluation year under one policy,
// reporting allocations: this is the purge-trigger hot path the
// incremental candidate index optimizes.
func replayPolicy(b *testing.B, build func(em *sim.Emulator) retention.Policy, legacy bool) {
	ds := benchDataset(b)
	em, err := sim.New(ds, sim.Config{TargetUtilization: 0.5, LegacySelection: legacy})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var misses int64
	for i := 0; i < b.N; i++ {
		res, err := em.Run(build(em))
		if err != nil {
			b.Fatal(err)
		}
		misses = res.TotalMisses
	}
	b.ReportMetric(float64(misses), "misses")
}

// BenchmarkReplayFLT measures the full-year FLT replay on the indexed
// selection path.
func BenchmarkReplayFLT(b *testing.B) {
	replayPolicy(b, func(em *sim.Emulator) retention.Policy { return em.NewFLT() }, false)
}

// BenchmarkReplayFLTLegacy is the same replay on the legacy
// namespace-walk selection path (the pre-index baseline).
func BenchmarkReplayFLTLegacy(b *testing.B) {
	replayPolicy(b, func(em *sim.Emulator) retention.Policy { return em.NewFLT() }, true)
}

// BenchmarkReplayActiveDR measures the full-year ActiveDR replay on
// the indexed selection path.
func BenchmarkReplayActiveDR(b *testing.B) {
	replayPolicy(b, func(em *sim.Emulator) retention.Policy {
		adr, err := em.NewActiveDR()
		if err != nil {
			b.Fatal(err)
		}
		return adr
	}, false)
}

// BenchmarkReplayActiveDRLegacy is the same replay on the legacy
// walk-per-trigger selection path.
func BenchmarkReplayActiveDRLegacy(b *testing.B) {
	replayPolicy(b, func(em *sim.Emulator) retention.Policy {
		adr, err := em.NewActiveDR()
		if err != nil {
			b.Fatal(err)
		}
		return adr
	}, true)
}

// --- multiplexed sweep benchmarks (DESIGN.md §13) ---

// sweep4Lanes is the 4-policy lifetime sweep both sweep benchmarks
// evaluate: the paper's FLT lifetime grid on one shared access stream.
func sweep4Lanes() []sim.LaneSpec {
	lanes := make([]sim.LaneSpec, 0, 4)
	for _, days := range []int{7, 30, 60, 90} {
		lanes = append(lanes, sim.LaneSpec{
			Policy: sim.PolicyFLT,
			Config: sim.Config{Lifetime: timeutil.Days(days)},
		})
	}
	return lanes
}

// BenchmarkSweep4Sequential replays the 4-policy sweep the historical
// way: four independent full-year replays. Emulators (snapshot load,
// activity indexing) are prebuilt, so the timer sees only the replay
// loops — the quantity the multiplexed runner collapses.
func BenchmarkSweep4Sequential(b *testing.B) {
	ds := benchDataset(b)
	lanes := sweep4Lanes()
	ems := make([]*sim.Emulator, len(lanes))
	for i, l := range lanes {
		em, err := sim.New(ds, l.Config)
		if err != nil {
			b.Fatal(err)
		}
		ems[i] = em
	}
	b.ReportAllocs()
	b.ResetTimer()
	var misses int64
	for i := 0; i < b.N; i++ {
		misses = 0
		for _, em := range ems {
			res, err := em.Run(em.NewFLT())
			if err != nil {
				b.Fatal(err)
			}
			misses += res.TotalMisses
		}
	}
	b.ReportMetric(float64(misses), "misses")
}

// BenchmarkSweep4Multiplexed is the same sweep in ONE multiplexed pass
// over the shared columnar feed. cmd/bench derives the
// sweep4-speedup metric from this pair; the acceptance bar is >= 3x
// on one core.
func BenchmarkSweep4Multiplexed(b *testing.B) {
	ds := benchDataset(b)
	m, err := sim.NewMultiplexer(ds)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the per-dataset caches (columnar feed, evaluators) the
	// sequential side gets for free via its prebuilt emulators.
	if _, err := m.Run(sweep4Lanes()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var misses int64
	for i := 0; i < b.N; i++ {
		results, err := m.Run(sweep4Lanes())
		if err != nil {
			b.Fatal(err)
		}
		misses = 0
		for _, res := range results {
			misses += res.TotalMisses
		}
	}
	b.ReportMetric(float64(misses), "misses")
	b.ReportMetric(4, "policies/pass")
}

// --- sharded namespace and snapfile benchmarks (DESIGN.md §15) ---

// BenchmarkShardScaling replays the year over the user-hash-sharded
// namespace at shard counts {1, 4, 16}; the shards=1 case goes
// through the plain single tree (Config.Shards <= 1). Results are
// bit-identical across the row — the equivalence suite pins that —
// so the row isolates the layout's cost/benefit. On a single-core
// host the interesting quantity is the overhead trend, not speedup;
// cmd/bench records the trajectory either way.
func BenchmarkShardScaling(b *testing.B) {
	ds := benchDataset(b)
	for _, shards := range []int{1, 4, 16} {
		// key=value naming: check-bench.sh strips a trailing -N as the
		// go-test cpu suffix, so a "shards-16" spelling would collapse
		// the whole row into one bucket.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			em, err := sim.New(ds, sim.Config{TargetUtilization: 0.5, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var misses int64
			for i := 0; i < b.N; i++ {
				res, err := em.Run(em.NewFLT())
				if err != nil {
					b.Fatal(err)
				}
				misses = res.TotalMisses
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// benchSnapfile writes the bench dataset's snapshot as a snapfile
// once per process and returns its path.
func benchSnapfile(b *testing.B) string {
	b.Helper()
	snapOnce.Do(func() {
		dir, err := os.MkdirTemp("", "benchsnap")
		if err != nil {
			b.Fatal(err)
		}
		snapPath = filepath.Join(dir, "fs.snap")
		if err := vfs.WriteSnapfileFromSnapshot(snapPath, &benchDataset(b).Snapshot); err != nil {
			b.Fatal(err)
		}
	})
	return snapPath
}

// BenchmarkSnapshotOpen measures the snapfile's O(1) open: header
// parse and section validation only, no record decoding. This is the
// startup latency that replaces the TSV snapshot re-parse.
func BenchmarkSnapshotOpen(b *testing.B) {
	path := benchSnapfile(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := vfs.OpenSnapfile(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := sf.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoadFS decodes the whole snapfile into a live
// namespace — the eager path a replay takes once per process. Compare
// with BenchmarkVFSInsert, the same tree built from parsed TSV
// entries (which excludes the TSV parse itself, so the snapfile's
// real-world win is larger than the pair suggests).
func BenchmarkSnapshotLoadFS(b *testing.B) {
	path := benchSnapfile(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := vfs.OpenSnapfile(path)
		if err != nil {
			b.Fatal(err)
		}
		fsys, err := vfs.LoadSnapfileFS(sf)
		if err != nil {
			b.Fatal(err)
		}
		if cerr := sf.Close(); cerr != nil {
			b.Fatal(cerr)
		}
		if fsys.Count() == 0 {
			b.Fatal("empty namespace")
		}
	}
}

// --- ablations of DESIGN.md §3 choices ---

// runComparison replays the year with a custom sim config and reports
// the miss reduction as a metric.
func runComparison(b *testing.B, cfg sim.Config) {
	ds := benchDataset(b)
	for i := 0; i < b.N; i++ {
		em, err := sim.New(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := em.RunComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*cmp.MissReduction(), "miss-reduction-%")
	}
}

// BenchmarkAblationBaseline is the reference configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	runComparison(b, sim.Config{TargetUtilization: 0.5})
}

// BenchmarkAblationMergedScanOrder uses the alternative §3.4 reading
// (operation-active groups merged, ordered by outcome rank).
func BenchmarkAblationMergedScanOrder(b *testing.B) {
	runComparison(b, sim.Config{TargetUtilization: 0.5, Order: retention.ScanOrderMergedByOutcome})
}

// BenchmarkAblationStrictEq7 applies the literal Eq. (7) product with
// no inactive-class flooring.
func BenchmarkAblationStrictEq7(b *testing.B) {
	runComparison(b, sim.Config{TargetUtilization: 0.5, StrictEq7: true})
}

// BenchmarkAblationNoTarget disables the purge target: ActiveDR
// purges every stale file like FLT, keeping only the lifetime
// adjustment.
func BenchmarkAblationNoTarget(b *testing.B) {
	runComparison(b, sim.Config{TargetUtilization: 0})
}

// --- substrate micro-benchmarks ---

func BenchmarkVFSInsert(b *testing.B) {
	ds := benchDataset(b)
	entries := ds.Snapshot.Entries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsys := vfs.New()
		for j := range entries {
			e := &entries[j]
			if err := fsys.Insert(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, ATime: e.ATime}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(entries)), "files/op")
}

func BenchmarkVFSLookup(b *testing.B) {
	ds := benchDataset(b)
	fsys, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]string, 0, len(ds.Snapshot.Entries))
	for i := range ds.Snapshot.Entries {
		paths = append(paths, ds.Snapshot.Entries[i].Path)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		if _, ok := fsys.Lookup(p); !ok {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkTypeRank(b *testing.B) {
	src := randx.New(3)
	tc := experiments.CaptureDate
	acts := make([]activeness.Activity, 500)
	for i := range acts {
		acts[i] = activeness.Activity{
			TS:     tc.Add(-timeutil.Duration(500-i) * timeutil.Hour * 10),
			Impact: 1 + src.Float64()*100,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		activeness.TypeRank(acts, tc, timeutil.Days(7))
	}
}

func BenchmarkZipf(b *testing.B) {
	z := randx.NewZipf(randx.New(1), 1.2, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
